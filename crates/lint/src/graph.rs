//! The whole-workspace call graph, built from per-file
//! [`FileSummary`]s (DESIGN.md §17).
//!
//! Resolution is heuristic, tuned to err in a rule-appropriate
//! direction: taint and reachability passes want *recall* (a missed
//! edge silently waives a rule), so method calls fan out to every
//! plausible workspace target — but bounded. Three dampers keep the
//! fan-out honest:
//!
//! 1. **std-trait names never form edges** (`clone`, `fmt`, `next`, …):
//!    a call through one of those is overwhelmingly a std method, and
//!    an edge to a same-named workspace function would wire unrelated
//!    crates together.
//! 2. **dependency filtering** — a method-call edge may only land in
//!    the caller's own crate or one of its `Cargo.toml` dependencies
//!    (callers whose crate has no parsed manifest are unrestricted).
//! 3. **a candidate cap** — a name that still matches more than
//!    [`METHOD_CANDIDATE_CAP`] functions resolves to nothing and is
//!    counted in [`Graph::dropped_ambiguous`] instead of spraying
//!    edges; the count is published in `--graph` output so the blind
//!    spot is visible, not silent.

use crate::items::{Callee, FileSummary};
use std::collections::{BTreeMap, BTreeSet};

/// One function node.
#[derive(Debug, Clone)]
pub struct Node {
    pub krate: String,
    pub module: Vec<String>,
    pub impl_type: Option<String>,
    pub name: String,
    /// Declared `async fn`.
    pub is_async: bool,
    /// Workspace-relative file.
    pub rel: String,
    pub line: u32,
    /// Index of the defining file in the summaries slice.
    pub file: usize,
    /// Index of the item within its file's `fns`.
    pub fn_idx: usize,
}

impl Node {
    /// `krate::module::Type::name` — for messages and the JSON dump.
    pub fn qualified(&self) -> String {
        let mut s = self.krate.clone();
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(t) = &self.impl_type {
            s.push_str("::");
            s.push_str(t);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    /// Call-site line in the caller's file.
    pub line: u32,
    /// Inside a `catch_unwind(…)` argument (P1 does not traverse).
    pub guarded: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub nodes: Vec<Node>,
    pub edges: Vec<Edge>,
    /// Outgoing edge indices per node.
    pub out: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    pub incoming: Vec<Vec<usize>>,
    /// node id for (file index, fn index).
    fn_node: BTreeMap<(usize, usize), usize>,
    /// Call sites whose candidate set exceeded the cap.
    pub dropped_ambiguous: usize,
}

/// Method names that never form call edges: std-trait surface (plus
/// `run`, the one ubiquitous entry-point name every executor-shaped
/// type defines) whose workspace homonyms would wire unrelated crates
/// together.
const METHOD_EDGE_EXCLUDE: &[&str] = &[
    "run",
    "clone",
    "clone_from",
    "to_string",
    "to_owned",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "from",
    "into",
    "try_from",
    "try_into",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "deref",
    "deref_mut",
    "drop",
    "next",
    "nth",
    "len",
    "is_empty",
    "borrow",
    "borrow_mut",
    "index",
    "index_mut",
];

/// Above this many candidates a call site resolves to nothing (counted
/// in `dropped_ambiguous` rather than spraying edges).
const METHOD_CANDIDATE_CAP: usize = 8;

/// Workspace dependency map: crate import name → import names of its
/// `[dependencies]` + `[dev-dependencies]`. An empty map (fixtures) or
/// an unknown caller means "unrestricted".
pub type Deps = BTreeMap<String, BTreeSet<String>>;

pub fn build(summaries: &[FileSummary], deps: &Deps) -> Graph {
    let mut g = Graph::default();
    // Nodes, plus name → candidate-node index.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, s) in summaries.iter().enumerate() {
        for (ki, f) in s.fns.iter().enumerate() {
            let id = g.nodes.len();
            g.nodes.push(Node {
                krate: s.krate.clone(),
                module: f.module.clone(),
                impl_type: f.impl_type.clone(),
                name: f.name.clone(),
                is_async: f.is_async,
                rel: s.rel.clone(),
                line: f.line,
                file: fi,
                fn_idx: ki,
            });
            g.fn_node.insert((fi, ki), id);
        }
    }
    for (id, n) in g.nodes.iter().enumerate() {
        by_name.entry(&n.name).or_default().push(id);
    }
    let workspace_crates: BTreeSet<&str> = summaries.iter().map(|s| s.krate.as_str()).collect();

    let mut edge_set: BTreeSet<(usize, usize, u32, bool)> = BTreeSet::new();
    for (fi, s) in summaries.iter().enumerate() {
        for call in &s.calls {
            let Some(&from) = g.fn_node.get(&(fi, call.from)) else {
                continue;
            };
            let targets = resolve(
                &g.nodes,
                &by_name,
                &workspace_crates,
                deps,
                s,
                from,
                &call.callee,
            );
            match targets {
                Resolution::Targets(ts) => {
                    // Await discrimination: an `.await`ed call targets an
                    // async fn and an un-awaited one does not — but only
                    // filter when some candidate matches, so a stored
                    // future (`let f = g(); f.await`) keeps its edges.
                    let matched: Vec<usize> = ts
                        .iter()
                        .copied()
                        .filter(|&id| g.nodes[id].is_async == call.awaited)
                        .collect();
                    let ts = if matched.is_empty() { ts } else { matched };
                    for to in ts {
                        if to != from {
                            edge_set.insert((from, to, call.line, call.guarded));
                        }
                    }
                }
                Resolution::TooAmbiguous => g.dropped_ambiguous += 1,
                Resolution::External => {}
            }
        }
    }
    g.edges = edge_set
        .into_iter()
        .map(|(from, to, line, guarded)| Edge {
            from,
            to,
            line,
            guarded,
        })
        .collect();
    g.out = vec![Vec::new(); g.nodes.len()];
    g.incoming = vec![Vec::new(); g.nodes.len()];
    for (ei, e) in g.edges.iter().enumerate() {
        g.out[e.from].push(ei);
        g.incoming[e.to].push(ei);
    }
    g
}

impl Graph {
    /// Node id of a (file, fn) pair.
    pub fn node_of(&self, file: usize, fn_idx: usize) -> Option<usize> {
        self.fn_node.get(&(file, fn_idx)).copied()
    }
}

enum Resolution {
    Targets(Vec<usize>),
    /// Over the candidate cap.
    TooAmbiguous,
    /// No workspace target (std / external / unknown): not an edge,
    /// not a drop.
    External,
}

fn deps_allow(deps: &Deps, caller: &str, callee: &str) -> bool {
    if caller == callee || deps.is_empty() {
        return true;
    }
    match deps.get(caller) {
        Some(ds) => ds.contains(callee),
        None => true, // unknown caller (tests/, examples/): unrestricted
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    nodes: &[Node],
    by_name: &BTreeMap<&str, Vec<usize>>,
    workspace_crates: &BTreeSet<&str>,
    deps: &Deps,
    s: &FileSummary,
    from: usize,
    callee: &Callee,
) -> Resolution {
    match callee {
        Callee::Method(m) => {
            if METHOD_EDGE_EXCLUDE.contains(&m.as_str()) {
                return Resolution::External;
            }
            let Some(cands) = by_name.get(m.as_str()) else {
                return Resolution::External;
            };
            let viable: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| {
                    nodes[id].impl_type.is_some() && deps_allow(deps, &s.krate, &nodes[id].krate)
                })
                .collect();
            // Same-crate preference: when the caller's own crate defines
            // a matching method, the receiver is overwhelmingly that
            // local type — don't also spray edges into dependencies.
            let local: Vec<usize> = viable
                .iter()
                .copied()
                .filter(|&id| nodes[id].krate == s.krate)
                .collect();
            let chosen = if local.is_empty() { viable } else { local };
            if chosen.is_empty() {
                Resolution::External
            } else if chosen.len() > METHOD_CANDIDATE_CAP {
                Resolution::TooAmbiguous
            } else {
                Resolution::Targets(chosen)
            }
        }
        Callee::Free(f) => {
            // `use` alias first: an imported free fn is a precise match.
            if let Some((_, path)) = s.uses.iter().find(|(a, _)| a == f) {
                return resolve_path(nodes, by_name, workspace_crates, deps, s, from, path);
            }
            let Some(cands) = by_name.get(f.as_str()) else {
                return Resolution::External;
            };
            let caller = &nodes[from];
            let free: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| nodes[id].impl_type.is_none())
                .collect();
            // Same file + module, then same file, then same crate,
            // then globally unique.
            for narrowing in [
                free.iter()
                    .copied()
                    .filter(|&id| {
                        nodes[id].file == caller.file && nodes[id].module == caller.module
                    })
                    .collect::<Vec<_>>(),
                free.iter()
                    .copied()
                    .filter(|&id| nodes[id].file == caller.file)
                    .collect(),
                free.iter()
                    .copied()
                    .filter(|&id| nodes[id].krate == caller.krate)
                    .collect(),
            ] {
                if !narrowing.is_empty() {
                    return if narrowing.len() > METHOD_CANDIDATE_CAP {
                        Resolution::TooAmbiguous
                    } else {
                        Resolution::Targets(narrowing)
                    };
                }
            }
            if free.len() == 1 && deps_allow(deps, &s.krate, &nodes[free[0]].krate) {
                Resolution::Targets(free)
            } else {
                Resolution::External
            }
        }
        Callee::Path(segs) => resolve_path(nodes, by_name, workspace_crates, deps, s, from, segs),
    }
}

fn resolve_path(
    nodes: &[Node],
    by_name: &BTreeMap<&str, Vec<usize>>,
    workspace_crates: &BTreeSet<&str>,
    deps: &Deps,
    s: &FileSummary,
    from: usize,
    segs: &[String],
) -> Resolution {
    let mut segs: Vec<String> = segs.to_vec();
    // Strip `crate` / `self` / leading `super`s: all same-crate.
    let mut own_crate = false;
    while let Some(first) = segs.first() {
        match first.as_str() {
            "crate" | "super" => {
                own_crate = true;
                segs.remove(0);
            }
            "self" => {
                segs.remove(0);
            }
            _ => break,
        }
    }
    // `Self::f` → the caller's impl type.
    if segs.first().is_some_and(|f| f == "Self") {
        if let Some(t) = nodes[from].impl_type.clone() {
            segs[0] = t;
            own_crate = true;
        } else {
            return Resolution::External;
        }
    }
    // Expand a `use` alias at the head.
    if let Some(first) = segs.first() {
        if let Some((_, path)) = s.uses.iter().find(|(a, _)| a == first) {
            let mut expanded = path.clone();
            expanded.extend(segs[1..].iter().cloned());
            segs = expanded;
        }
    }
    if segs.is_empty() {
        return Resolution::External;
    }
    // A crate-name head pins the target crate.
    let mut target_crate: Option<String> = None;
    if !own_crate {
        let head = segs[0].as_str();
        if head == s.krate || workspace_crates.contains(head) {
            target_crate = Some(segs.remove(0));
        } else if head == "std" || head == "core" || head == "alloc" {
            return Resolution::External;
        }
    } else {
        target_crate = Some(s.krate.clone());
    }
    let Some(name) = segs.last().cloned() else {
        return Resolution::External;
    };
    let qualifier = &segs[..segs.len() - 1];
    let Some(cands) = by_name.get(name.as_str()) else {
        return Resolution::External;
    };
    let caller_crate = &s.krate;
    let matches_qualifier = |n: &Node| -> bool {
        if qualifier.is_empty() {
            return n.impl_type.is_none();
        }
        let last_q = qualifier.last().unwrap().as_str();
        // A capitalized final qualifier is a type: `Type::assoc`.
        if last_q.chars().next().is_some_and(|c| c.is_uppercase()) {
            if n.impl_type.as_deref() != Some(last_q) {
                return false;
            }
            // Any leading module segments must suffix-match the module
            // path.
            return module_suffix_matches(&n.module, &qualifier[..qualifier.len() - 1]);
        }
        n.impl_type.is_none() && module_suffix_matches(&n.module, qualifier)
    };
    let viable: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| {
            let n = &nodes[id];
            if let Some(tc) = &target_crate {
                if &n.krate != tc {
                    return false;
                }
            } else if !deps_allow(deps, caller_crate, &n.krate) {
                return false;
            }
            matches_qualifier(n)
        })
        .collect();
    if viable.is_empty() {
        return Resolution::External;
    }
    // Prefer same-crate when the crate was not pinned.
    let same_crate: Vec<usize> = viable
        .iter()
        .copied()
        .filter(|&id| &nodes[id].krate == caller_crate)
        .collect();
    let chosen = if target_crate.is_none() && !same_crate.is_empty() {
        same_crate
    } else {
        viable
    };
    if chosen.len() > METHOD_CANDIDATE_CAP {
        Resolution::TooAmbiguous
    } else {
        Resolution::Targets(chosen)
    }
}

/// Does the node's module path end with the qualifier segments?
fn module_suffix_matches(module: &[String], qualifier: &[String]) -> bool {
    if qualifier.is_empty() {
        return true;
    }
    if qualifier.len() > module.len() {
        return false;
    }
    module[module.len() - qualifier.len()..]
        .iter()
        .zip(qualifier)
        .all(|(a, b)| a == b)
}

// ---------------------------------------------------------------------
// Dumps.

impl Graph {
    /// The `--graph` JSON document (deep_json, stable field order).
    pub fn to_json(&self) -> String {
        use deep_json::Value;
        let nodes: Vec<Value> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| {
                Value::Object(vec![
                    ("id".to_string(), Value::Number(id as f64)),
                    ("fn".to_string(), Value::String(n.qualified())),
                    ("file".to_string(), Value::String(n.rel.clone())),
                    ("line".to_string(), Value::Number(n.line as f64)),
                ])
            })
            .collect();
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("from".to_string(), Value::Number(e.from as f64)),
                    ("to".to_string(), Value::Number(e.to as f64)),
                    ("line".to_string(), Value::Number(e.line as f64)),
                    ("guarded".to_string(), Value::Bool(e.guarded)),
                ])
            })
            .collect();
        let mut per_crate: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for n in &self.nodes {
            per_crate.entry(&n.krate).or_default().0 += 1;
        }
        for e in &self.edges {
            per_crate.entry(&self.nodes[e.from].krate).or_default().1 += 1;
        }
        let crates: Vec<(String, Value)> = per_crate
            .into_iter()
            .map(|(k, (fns, calls))| {
                (
                    k.to_string(),
                    Value::Object(vec![
                        ("functions".to_string(), Value::Number(fns as f64)),
                        ("call_edges".to_string(), Value::Number(calls as f64)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("version".to_string(), Value::Number(1.0)),
            (
                "functions".to_string(),
                Value::Number(self.nodes.len() as f64),
            ),
            (
                "call_edges".to_string(),
                Value::Number(self.edges.len() as f64),
            ),
            (
                "dropped_ambiguous_call_sites".to_string(),
                Value::Number(self.dropped_ambiguous as f64),
            ),
            ("crates".to_string(), Value::Object(crates)),
            ("nodes".to_string(), Value::Array(nodes)),
            ("edges".to_string(), Value::Array(edges)),
        ])
        .to_json_pretty()
    }

    /// The committed `docs/lint-graph.md` summary: per-crate counts and
    /// the top fan-in functions among sim-scope files (`is_sim` decides
    /// which files count as simulation scope).
    pub fn to_markdown(&self, is_sim: &dyn Fn(&str) -> bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# deep-lint workspace call graph");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Generated by `cargo run -p deep-lint -- --graph-md docs/lint-graph.md` \
             (DESIGN.md §17). Regenerate after structural changes; CI's lint job \
             checks the committed copy is current."
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "- **{} functions**, **{} resolved call edges**, {} call sites dropped \
             as too ambiguous (over the {}-candidate cap).",
            self.nodes.len(),
            self.edges.len(),
            self.dropped_ambiguous,
            METHOD_CANDIDATE_CAP,
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "## Per-crate size");
        let _ = writeln!(out);
        let _ = writeln!(out, "| crate | functions | call edges (outgoing) |");
        let _ = writeln!(out, "|---|---:|---:|");
        let mut per_crate: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for n in &self.nodes {
            per_crate.entry(&n.krate).or_default().0 += 1;
        }
        for e in &self.edges {
            per_crate.entry(&self.nodes[e.from].krate).or_default().1 += 1;
        }
        for (k, (fns, calls)) in &per_crate {
            let _ = writeln!(out, "| `{k}` | {fns} | {calls} |");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "## Top fan-in functions in simulation scope");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Call-edge fan-in of functions defined in D2-covered (simulation-scope) \
             files — the functions whose determinism the most callers lean on."
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "| function | file | fan-in |");
        let _ = writeln!(out, "|---|---|---:|");
        let mut ranked: Vec<(usize, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| is_sim(&n.rel))
            .map(|(id, _)| (self.incoming[id].len(), id))
            .filter(|(fan, _)| *fan > 0)
            .collect();
        ranked.sort_by(|a, b| {
            b.0.cmp(&a.0).then(
                self.nodes[a.1]
                    .qualified()
                    .cmp(&self.nodes[b.1].qualified()),
            )
        });
        for (fan, id) in ranked.into_iter().take(15) {
            let n = &self.nodes[id];
            let _ = writeln!(
                out,
                "| `{}` | `{}:{}` | {} |",
                n.qualified(),
                n.rel,
                n.line,
                fan
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;

    fn graph_of(files: &[(&str, &str)]) -> (Graph, Vec<FileSummary>) {
        let summaries: Vec<FileSummary> =
            files.iter().map(|(rel, src)| extract(rel, src)).collect();
        let g = build(&summaries, &Deps::new());
        (g, summaries)
    }

    fn edge_names(g: &Graph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| (g.nodes[e.from].qualified(), g.nodes[e.to].qualified()))
            .collect()
    }

    #[test]
    fn free_and_path_calls_resolve_across_files() {
        let (g, _) = graph_of(&[
            (
                "crates/core/src/lib.rs",
                "pub fn entry() { helper(); deep_json::digest(1); }\nfn helper() {}",
            ),
            (
                "crates/json/src/lib.rs",
                "pub fn digest(x: u64) -> u64 { x }",
            ),
        ]);
        let edges = edge_names(&g);
        assert!(edges.contains(&(
            "deep_core::entry".to_string(),
            "deep_core::helper".to_string()
        )));
        assert!(edges.contains(&(
            "deep_core::entry".to_string(),
            "deep_json::digest".to_string()
        )));
    }

    #[test]
    fn use_aliases_and_assoc_fns_resolve() {
        let (g, _) = graph_of(&[
            (
                "crates/serve/src/scheduler.rs",
                "use deep_scenario::Scenario;\n\
                 pub fn admit() { let s = Scenario::from_value(); s.expand(); }",
            ),
            (
                "crates/scenario/src/schema.rs",
                "pub struct Scenario;\n\
                 impl Scenario {\n    pub fn from_value() -> Scenario { Scenario }\n\
                 \n    pub fn expand(&self) {}\n}",
            ),
        ]);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&(
                "deep_serve::scheduler::admit".to_string(),
                "deep_scenario::schema::Scenario::from_value".to_string()
            )),
            "{edges:?}"
        );
        assert!(
            edges.contains(&(
                "deep_serve::scheduler::admit".to_string(),
                "deep_scenario::schema::Scenario::expand".to_string()
            )),
            "{edges:?}"
        );
    }

    #[test]
    fn std_trait_methods_do_not_form_edges() {
        let (g, _) = graph_of(&[
            (
                "crates/core/src/lib.rs",
                "pub fn f(x: &X) { let _ = x.clone(); let _ = x.next(); }",
            ),
            (
                "crates/json/src/lib.rs",
                "pub struct Y;\nimpl Y {\n    pub fn clone(&self) -> Y { Y }\n    pub fn next(&self) {}\n}",
            ),
        ]);
        assert!(g.edges.is_empty(), "{:?}", edge_names(&g));
    }

    #[test]
    fn dependency_filter_blocks_unrelated_crates() {
        let files = [
            ("crates/core/src/lib.rs", "pub fn f(x: &X) { x.submit(); }"),
            (
                "crates/serve/src/scheduler.rs",
                "pub struct Scheduler;\nimpl Scheduler {\n    pub fn submit(&self) {}\n}",
            ),
        ];
        let summaries: Vec<FileSummary> =
            files.iter().map(|(rel, src)| extract(rel, src)).collect();
        // deep_core does not depend on deep_serve: no edge.
        let mut deps = Deps::new();
        deps.insert("deep_core".to_string(), BTreeSet::new());
        let g = build(&summaries, &deps);
        assert!(g.edges.is_empty());
        // Permissive (empty map): the fuzzy method edge exists.
        let g = build(&summaries, &Deps::new());
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn over_ambiguous_methods_are_dropped_and_counted() {
        let mut files: Vec<(String, String)> = vec![(
            "crates/core/src/lib.rs".to_string(),
            "pub fn f(x: &X) { x.busy(); }".to_string(),
        )];
        for i in 0..10 {
            files.push((
                format!("crates/json/src/m{i}.rs"),
                format!("pub struct T{i};\nimpl T{i} {{\n    pub fn busy(&self) {{}}\n}}"),
            ));
        }
        let summaries: Vec<FileSummary> =
            files.iter().map(|(rel, src)| extract(rel, src)).collect();
        let g = build(&summaries, &Deps::new());
        assert!(g.edges.is_empty());
        assert_eq!(g.dropped_ambiguous, 1);
    }

    #[test]
    fn json_and_markdown_dumps_render() {
        let (g, _) = graph_of(&[(
            "crates/core/src/lib.rs",
            "pub fn entry() { helper(); }\npub fn helper() {}",
        )]);
        let doc = deep_json::from_str(&g.to_json()).unwrap();
        assert_eq!(doc.get("functions").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(doc.get("call_edges").and_then(|v| v.as_u64()), Some(1));
        let md = g.to_markdown(&|_| true);
        assert!(md.contains("| `deep_core` | 2 | 1 |"), "{md}");
        assert!(md.contains("deep_core::helper"), "{md}");
    }
}
