//! The rule catalogue and per-file analysis.
//!
//! Every rule is a pure function over a [`LexFile`] (plus raw source
//! lines for S1's comment-block walk). Findings carry stable rule names
//! so pragmas, CLI toggles, and CI output all speak the same ids:
//!
//! | id                       | invariant                                              |
//! |--------------------------|--------------------------------------------------------|
//! | `unordered-iter`         | D1: no `HashMap`/`HashSet` iteration in sim code       |
//! | `ambient-authority`      | D2: no wall clocks, `std::env`, or ambient RNG         |
//! | `unordered-float-reduce` | D3: no unordered reduction over parallel iterators     |
//! | `undocumented-unsafe`    | S1: every `unsafe` site carries a `// SAFETY:` comment |
//! | `missing-forbid-unsafe`  | S2: non-vendor crate roots `#![forbid(unsafe_code)]`   |
//! | `malformed-pragma`       | the pragma grammar itself (unknown rule, no reason)    |
//!
//! Suppression: `// deep-lint: allow(<rule>[, <rule>]*) — <why>`.
//! A trailing pragma covers its own line; a standalone pragma covers the
//! next code line. The justification is mandatory — an allow without a
//! *why* is itself a finding.

use crate::lexer::{lex, Comment, LexFile, TokKind, Token};
use std::collections::BTreeSet;
use std::fmt;

/// A lint rule id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1 — `HashMap`/`HashSet` iteration (order nondeterminism).
    UnorderedIter,
    /// D2 — wall clocks, `std::env`, ambient RNG in sim code.
    AmbientAuthority,
    /// D3 — unordered float reduction over a parallel iterator.
    UnorderedFloatReduce,
    /// S1 — `unsafe` without a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// S2 — crate root missing `#![forbid(unsafe_code)]`.
    MissingForbidUnsafe,
    /// A `deep-lint:` pragma that does not parse or lacks a reason.
    MalformedPragma,
    /// D4 — interprocedural: a sim-scope call transitively reaches an
    /// ambient-authority source outside D2's file scope.
    DeterminismTaint,
    /// D5 — interprocedural: un-partitioned `spawn` or shared-mutable
    /// access reachable from partitioned des_scaling code.
    PartitionSafety,
    /// P1 — interprocedural: panic sink reachable from deep-serve
    /// request handling.
    PanicPath,
}

impl Rule {
    /// Every rule, in catalogue order.
    pub const ALL: [Rule; 9] = [
        Rule::UnorderedIter,
        Rule::AmbientAuthority,
        Rule::UnorderedFloatReduce,
        Rule::UndocumentedUnsafe,
        Rule::MissingForbidUnsafe,
        Rule::MalformedPragma,
        Rule::DeterminismTaint,
        Rule::PartitionSafety,
        Rule::PanicPath,
    ];

    /// The stable textual id (used by pragmas and `--only`/`--skip`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::AmbientAuthority => "ambient-authority",
            Rule::UnorderedFloatReduce => "unordered-float-reduce",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::MissingForbidUnsafe => "missing-forbid-unsafe",
            Rule::MalformedPragma => "malformed-pragma",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::PartitionSafety => "partition-safety",
            Rule::PanicPath => "panic-path",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::UnorderedIter => {
                "HashMap/HashSet iteration in simulation code: iteration order is \
                 seeded per-process and can leak into traces and output"
            }
            Rule::AmbientAuthority => {
                "wall-clock (Instant/SystemTime), std::env, or ambient RNG in \
                 simulation code: clocks and seeds must flow through simkit"
            }
            Rule::UnorderedFloatReduce => {
                "sum/product/reduce/fold directly on a parallel iterator: float \
                 reduction order depends on work-stealing; collect then fold in \
                 index order (the par_sweep pattern)"
            }
            Rule::UndocumentedUnsafe => {
                "unsafe block/fn/impl without a // SAFETY: comment immediately \
                 above (or a # Safety doc section)"
            }
            Rule::MissingForbidUnsafe => "non-vendor crate root without #![forbid(unsafe_code)]",
            Rule::MalformedPragma => {
                "a deep-lint pragma that does not parse, names an unknown rule, \
                 or lacks the mandatory justification"
            }
            Rule::DeterminismTaint => {
                "interprocedural: a call in sim-scope code transitively reaches \
                 a wall-clock/env/RNG source defined in a D2-exempt file — the \
                 cross-file blind spot of ambient-authority"
            }
            Rule::PartitionSafety => {
                "interprocedural: code reachable from the partitioned des_scaling \
                 path uses un-partitioned Sim::spawn or shared-mutable (RefCell) \
                 state, which would break the (at,seq) merge-order proof"
            }
            Rule::PanicPath => {
                "interprocedural: unwrap/expect/map-index reachable from \
                 deep-serve request handling — a malformed job must yield an \
                 error response, not abort the daemon"
            }
        }
    }

    /// Parse a textual id.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired. (Ordered after `line` so the derived sort
    /// is path → line → rule.)
    pub rule: Rule,
    /// Human-readable explanation, specific to the site.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

// ---------------------------------------------------------------------
// Pragmas.

/// A parsed `deep-lint: allow(...)` pragma.
struct Pragma {
    rules: BTreeSet<Rule>,
    /// The line(s) of code this pragma covers.
    covers: Option<u32>,
}

/// Scan comments for pragmas. Returns the usable pragmas plus findings
/// for malformed ones.
fn collect_pragmas(file: &LexFile, path: &str) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in &file.comments {
        let Some(text) = pragma_text(&c.text) else {
            continue;
        };
        match parse_pragma(text) {
            Ok(rules) => {
                let covers = if c.trailing {
                    Some(c.line)
                } else {
                    file.next_code_line(c.end_line)
                };
                pragmas.push(Pragma { rules, covers });
            }
            Err(why) => findings.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: Rule::MalformedPragma,
                message: why,
            }),
        }
    }
    (pragmas, findings)
}

/// Well-formed pragma coverage, for the interprocedural passes (which
/// run long after `lint_source` and need to honour the same grammar):
/// (covered line, allowed rules). Malformed pragmas are reported by
/// `lint_source`, not here.
pub(crate) fn pragma_allows(file: &LexFile) -> Vec<(u32, Vec<Rule>)> {
    let (pragmas, _) = collect_pragmas(file, "");
    pragmas
        .into_iter()
        .filter_map(|p| {
            p.covers
                .map(|line| (line, p.rules.into_iter().collect::<Vec<_>>()))
        })
        .collect()
}

/// A comment is a pragma *attempt* only when its content (after the
/// comment marker) starts with `deep-lint:` — prose that merely mentions
/// the tool mid-sentence is not parsed. This is what makes a typo'd
/// pragma a hard error while documentation stays free to discuss the
/// grammar.
fn pragma_text(comment: &str) -> Option<&str> {
    let mut t = comment.trim_start();
    for marker in ["//!", "///", "//", "/*!", "/**", "/*"] {
        if let Some(rest) = t.strip_prefix(marker) {
            t = rest;
            break;
        }
    }
    let t = t.trim_start();
    t.starts_with("deep-lint:").then_some(t)
}

/// Parse the text of a pragma starting at `deep-lint`. Grammar:
/// `deep-lint: allow(<rule>[, <rule>]*) — <why>` where `<why>` is
/// non-empty and the separator may be `—`, `--`, `-`, or `:`.
fn parse_pragma(text: &str) -> Result<BTreeSet<Rule>, String> {
    let rest = text
        .strip_prefix("deep-lint")
        .and_then(|r| r.trim_start().strip_prefix(':'))
        .ok_or_else(|| "expected `deep-lint: allow(<rule>) — <why>`".to_string())?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("allow")
        .ok_or_else(|| "expected `allow(<rule>)` after `deep-lint:`".to_string())?;
    let rest = rest.trim_start();
    let body = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = body
        .find(')')
        .ok_or_else(|| "unclosed `allow(` in pragma".to_string())?;
    let mut rules = BTreeSet::new();
    for raw in body[..close].split(',') {
        let name = raw.trim();
        let rule =
            Rule::from_name(name).ok_or_else(|| format!("unknown rule `{name}` in pragma"))?;
        if rule == Rule::MalformedPragma {
            return Err("`malformed-pragma` cannot be allowed".to_string());
        }
        rules.insert(rule);
    }
    if rules.is_empty() {
        return Err("empty rule list in `allow()`".to_string());
    }
    let mut why = body[close + 1..].trim_start();
    for sep in ["—", "–", "--", "-", ":"] {
        if let Some(stripped) = why.strip_prefix(sep) {
            why = stripped;
            break;
        }
    }
    if why.trim().is_empty() {
        return Err(
            "pragma lacks a justification: write `deep-lint: allow(<rule>) — <why>`".to_string(),
        );
    }
    Ok(rules)
}

// ---------------------------------------------------------------------
// Per-file entry point.

/// Which rules to run (file-scoped rules only; S2 is per crate root —
/// see [`check_crate_root`]).
#[derive(Debug, Clone)]
pub struct RuleSet {
    enabled: BTreeSet<Rule>,
}

impl RuleSet {
    /// All rules on.
    pub fn all() -> Self {
        RuleSet {
            enabled: Rule::ALL.into_iter().collect(),
        }
    }

    /// No rules on.
    pub fn none() -> Self {
        RuleSet {
            enabled: BTreeSet::new(),
        }
    }

    /// Enable a rule.
    pub fn with(mut self, rule: Rule) -> Self {
        self.enabled.insert(rule);
        self
    }

    /// Disable a rule.
    pub fn without(mut self, rule: Rule) -> Self {
        self.enabled.remove(&rule);
        self
    }

    /// Is a rule enabled?
    pub fn has(&self, rule: Rule) -> bool {
        self.enabled.contains(&rule)
    }
}

/// Lint one file's source. `path` is used only for reporting.
pub fn lint_source(path: &str, source: &str, rules: &RuleSet) -> Vec<Finding> {
    let file = lex(source);
    let (pragmas, mut findings) = collect_pragmas(&file, path);
    if !rules.has(Rule::MalformedPragma) {
        findings.clear();
    }
    if rules.has(Rule::UnorderedIter) {
        unordered_iter(&file, path, &mut findings);
    }
    if rules.has(Rule::AmbientAuthority) {
        ambient_authority(&file, path, &mut findings);
    }
    if rules.has(Rule::UnorderedFloatReduce) {
        unordered_float_reduce(&file, path, &mut findings);
    }
    if rules.has(Rule::UndocumentedUnsafe) {
        undocumented_unsafe(&file, source, path, &mut findings);
    }
    // Apply pragmas (malformed-pragma findings are never suppressible).
    findings.retain(|f| {
        f.rule == Rule::MalformedPragma
            || !pragmas
                .iter()
                .any(|p| p.covers == Some(f.line) && p.rules.contains(&f.rule))
    });
    findings.sort();
    findings.dedup();
    findings
}

/// S2: check one crate-root file (`lib.rs`, `main.rs`, `src/bin/*.rs`)
/// for an inner `#![forbid(unsafe_code)]` attribute.
pub fn check_crate_root(path: &str, source: &str) -> Option<Finding> {
    let file = lex(source);
    let has = file.tokens.windows(8).any(|w| {
        is_punct(&w[0], '#')
            && is_punct(&w[1], '!')
            && is_punct(&w[2], '[')
            && is_ident(&w[3], "forbid")
            && is_punct(&w[4], '(')
            && is_ident(&w[5], "unsafe_code")
            && is_punct(&w[6], ')')
            && is_punct(&w[7], ']')
    });
    if has {
        None
    } else {
        Some(Finding {
            path: path.to_string(),
            line: 1,
            rule: Rule::MissingForbidUnsafe,
            message: "crate root lacks #![forbid(unsafe_code)]".to_string(),
        })
    }
}

// ---------------------------------------------------------------------
// Token helpers.

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

fn is_ident(t: &Token, name: &str) -> bool {
    matches!(&t.kind, TokKind::Ident(s) if s == name)
}

fn ident_of(t: &Token) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// D1 — unordered-iter.

/// Methods whose call on a hash container observes iteration order.
const ORDER_OBSERVING: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

fn unordered_iter(file: &LexFile, path: &str, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    // Pass 1: names declared with a HashMap/HashSet type in this file.
    // Two shapes: `name: [path::]Hash{Map,Set}` (fields, params, typed
    // lets) and `name = [path::]Hash{Map,Set}::…` (untyped lets). A
    // wrapped type (`RefCell<HashMap<…>>`) is a known false negative —
    // the declaring token before the path head is `<`, not `:`/`=`.
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    for i in 0..toks.len() {
        let Some(name) = ident_of(&toks[i]) else {
            continue;
        };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        // Walk back over a `::`-joined path prefix to its head.
        let mut head = i;
        while head >= 3
            && is_punct(&toks[head - 1], ':')
            && is_punct(&toks[head - 2], ':')
            && ident_of(&toks[head - 3]).is_some()
        {
            head -= 3;
        }
        if head == 0 {
            continue;
        }
        // Skip `&` and `mut` between the declarator and the type.
        let mut k = head - 1;
        while k > 0 && (is_punct(&toks[k], '&') || is_ident(&toks[k], "mut")) {
            k -= 1;
        }
        if k == 0 {
            continue;
        }
        let declared = match &toks[k].kind {
            // `name: HashMap<…>` — require a real `:` (not half of `::`).
            TokKind::Punct(':') if !is_punct(&toks[k - 1], ':') => ident_of(&toks[k - 1]),
            // `name = HashMap::new()` — require a real `=` (not `==` etc).
            TokKind::Punct('=') if !matches!(&toks[k - 1].kind, TokKind::Punct(_)) => {
                ident_of(&toks[k - 1])
            }
            _ => None,
        };
        if let Some(n) = declared {
            hash_names.insert(n.to_string());
        }
    }
    if hash_names.is_empty() {
        return;
    }
    // Pass 2a: `name.iter()`-style order-observing method calls.
    for i in 0..toks.len().saturating_sub(3) {
        let Some(recv) = ident_of(&toks[i]) else {
            continue;
        };
        if !hash_names.contains(recv) {
            continue;
        }
        if is_punct(&toks[i + 1], '.')
            && ident_of(&toks[i + 2]).is_some_and(|m| ORDER_OBSERVING.contains(&m))
            && is_punct(&toks[i + 3], '(')
        {
            let method = ident_of(&toks[i + 2]).unwrap_or_default();
            findings.push(Finding {
                path: path.to_string(),
                line: toks[i + 2].line,
                rule: Rule::UnorderedIter,
                message: format!(
                    "`{recv}.{method}()` iterates a hash container ({recv} is \
                     declared HashMap/HashSet in this file); iteration order is \
                     nondeterministic — use BTreeMap/BTreeSet, sort before \
                     exposure, or justify with a pragma"
                ),
            });
        }
    }
    // Pass 2b: `for pat in [&][mut] [self.]name {`.
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "for") {
            continue;
        }
        let base = toks[i].depth;
        // Find the matching `in` at the same depth (an `impl … for …`
        // header has none and stops at its `{`).
        let mut j = i + 1;
        let mut in_at = None;
        while j < toks.len() && j < i + 64 {
            let t = &toks[j];
            if t.depth == base {
                if is_ident(t, "in") {
                    in_at = Some(j);
                    break;
                }
                if is_punct(t, '{') || is_punct(t, ';') {
                    break;
                }
            }
            j += 1;
        }
        let Some(in_at) = in_at else { continue };
        // Collect the iterated expression: tokens up to the body `{`.
        let mut expr_end = in_at + 1;
        while expr_end < toks.len()
            && !(toks[expr_end].depth == base && is_punct(&toks[expr_end], '{'))
        {
            expr_end += 1;
        }
        let expr = &toks[in_at + 1..expr_end];
        // A call in the expression means order is already mediated by a
        // method (covered by pass 2a if it observes order).
        if expr.iter().any(|t| is_punct(t, '(')) {
            continue;
        }
        let Some(last) = expr.iter().rev().find_map(|t| ident_of(t)) else {
            continue;
        };
        if hash_names.contains(last) {
            findings.push(Finding {
                path: path.to_string(),
                line: toks[in_at].line,
                rule: Rule::UnorderedIter,
                message: format!(
                    "`for … in {last}` iterates a hash container; iteration \
                     order is nondeterministic — use BTreeMap/BTreeSet, sort \
                     first, or justify with a pragma"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// D2 — ambient-authority.

fn ambient_authority(file: &LexFile, path: &str, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let flag = |findings: &mut Vec<Finding>, line: u32, what: &str, fix: &str| {
        findings.push(Finding {
            path: path.to_string(),
            line,
            rule: Rule::AmbientAuthority,
            message: format!("{what} in simulation code — {fix}"),
        });
    };
    for i in 0..toks.len() {
        let Some(name) = ident_of(&toks[i]) else {
            continue;
        };
        match name {
            "Instant" | "SystemTime" | "UNIX_EPOCH" => flag(
                findings,
                toks[i].line,
                &format!("wall-clock type `{name}`"),
                "simulated time must come from the simkit clock (SimTime)",
            ),
            "thread_rng" | "from_entropy" => flag(
                findings,
                toks[i].line,
                &format!("ambient RNG `{name}`"),
                "randomness must come from seeded SimRng streams",
            ),
            "env" => {
                // `env::var(...)`-style member access, or the `std::env`
                // path itself (covers `use std::env;`).
                let member = i + 3 < toks.len()
                    && is_punct(&toks[i + 1], ':')
                    && is_punct(&toks[i + 2], ':')
                    && ident_of(&toks[i + 3]).is_some_and(|m| {
                        matches!(
                            m,
                            "var"
                                | "var_os"
                                | "vars"
                                | "vars_os"
                                | "args"
                                | "args_os"
                                | "set_var"
                                | "remove_var"
                                | "temp_dir"
                        )
                    });
                let std_path = i >= 3
                    && is_punct(&toks[i - 1], ':')
                    && is_punct(&toks[i - 2], ':')
                    && is_ident(&toks[i - 3], "std");
                if member || std_path {
                    flag(
                        findings,
                        toks[i].line,
                        "`std::env` access",
                        "configuration must flow through DeepConfig/function \
                         parameters, not process environment",
                    );
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// D3 — unordered-float-reduce.

const PAR_SOURCES: [&str; 5] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_bridge",
];

const UNORDERED_SINKS: [&str; 4] = ["sum", "product", "reduce", "fold"];

fn unordered_float_reduce(file: &LexFile, path: &str, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !ident_of(&toks[i]).is_some_and(|n| PAR_SOURCES.contains(&n)) {
            continue;
        }
        let base = toks[i].depth;
        // Walk the method chain at the same depth. Closure bodies and
        // call arguments sit at depth > base, so an inner sequential
        // `.sum()` does not trip the rule. The chain ends at `;`, `,`,
        // or `{` at (or any token below) the chain's depth.
        let mut j = i + 1;
        let mut guard = 0;
        while j < toks.len() && guard < 2000 {
            let t = &toks[j];
            if t.depth < base {
                break;
            }
            if t.depth == base {
                match &t.kind {
                    TokKind::Punct(';') | TokKind::Punct(',') | TokKind::Punct('{') => break,
                    TokKind::Ident(m)
                        if UNORDERED_SINKS.contains(&m.as_str())
                            && j >= 1
                            && is_punct(&toks[j - 1], '.') =>
                    {
                        findings.push(Finding {
                            path: path.to_string(),
                            line: t.line,
                            rule: Rule::UnorderedFloatReduce,
                            message: format!(
                                "`.{m}()` terminates a parallel-iterator chain; \
                                 reduction order depends on work-stealing and is \
                                 not bit-reproducible — collect into index-ordered \
                                 slots and fold sequentially (see \
                                 deep_bench::sweep::par_sweep)"
                            ),
                        });
                    }
                    TokKind::Ident(m) if m == "collect" => break,
                    _ => {}
                }
            }
            j += 1;
            guard += 1;
        }
    }
}

// ---------------------------------------------------------------------
// S1 — undocumented-unsafe.

fn undocumented_unsafe(file: &LexFile, source: &str, path: &str, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let lines: Vec<&str> = source.lines().collect();
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "unsafe") {
            continue;
        }
        // Classify the site from the following token.
        let what = match toks.get(i + 1) {
            Some(t) if is_punct(t, '{') => "unsafe block",
            Some(t) if is_ident(t, "impl") => "unsafe impl",
            Some(t) if is_ident(t, "trait") => "unsafe trait",
            Some(t) if is_ident(t, "fn") => {
                // `unsafe fn(…)` is a function-pointer *type*, not a site.
                match toks.get(i + 2) {
                    Some(t2) if is_punct(t2, '(') => continue,
                    _ => "unsafe fn",
                }
            }
            Some(t) if is_ident(t, "extern") => "unsafe extern",
            _ => continue,
        };
        if !has_safety_comment(file, &lines, toks[i].line) {
            findings.push(Finding {
                path: path.to_string(),
                line: toks[i].line,
                rule: Rule::UndocumentedUnsafe,
                message: format!(
                    "{what} without a `// SAFETY:` comment immediately above \
                     (or `# Safety` doc section) stating why the contract holds"
                ),
            });
        }
    }
}

/// Is there a SAFETY comment covering `line`? Accepted: a comment on
/// the line itself, or inside the contiguous block of comment-only /
/// attribute-only lines immediately above, containing `SAFETY` or
/// `# Safety`.
fn has_safety_comment(file: &LexFile, lines: &[&str], line: u32) -> bool {
    let marks = |text: &str| text.contains("SAFETY") || text.contains("# Safety");
    if file
        .comments
        .iter()
        .any(|c| c.line <= line && line <= c.end_line && marks(&c.text))
    {
        return true;
    }
    let mut l = line - 1;
    while l >= 1 {
        let raw = lines.get(l as usize - 1).copied().unwrap_or("");
        let trimmed = raw.trim_start();
        let comment_here: Vec<&Comment> = file
            .comments
            .iter()
            .filter(|c| c.line <= l && l <= c.end_line)
            .collect();
        if !comment_here.is_empty() && !file.is_code_line(l) {
            if comment_here.iter().any(|c| marks(&c.text)) {
                return true;
            }
        } else if file.line_is_attribute_only(l) || trimmed.starts_with("#[") {
            // keep walking through attributes between comment and item
        } else {
            return false;
        }
        l -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        lint_source("t.rs", src, &RuleSet::all())
    }

    fn rules_fired(src: &str) -> BTreeSet<Rule> {
        run(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_fires_on_map_iteration_and_for_loops() {
        let src = "
struct S { m: HashMap<u32, u32> }
fn f(s: &S) -> Vec<u32> { s.m.keys().copied().collect() }
";
        // Field name `m` is declared hash-typed; `m.keys()` observes order.
        assert!(rules_fired(src).contains(&Rule::UnorderedIter));
        let src2 = "
fn g() {
    let mut set = HashSet::new();
    set.insert(1);
    for x in &set { println!(\"{x}\"); }
}
";
        assert!(rules_fired(src2).contains(&Rule::UnorderedIter));
    }

    #[test]
    fn d1_silent_on_keyed_access_and_btreemap() {
        let src = "
struct S { m: HashMap<u32, u32>, b: BTreeMap<u32, u32> }
fn f(s: &mut S) {
    s.m.insert(1, 2);
    let _ = s.m.get(&1);
    for (k, v) in &s.b {}
    let _: Vec<_> = s.b.iter().collect();
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn d1_pragma_suppresses_with_reason_only() {
        let with_reason = "
struct S { names: HashMap<String, u32> }
fn f(s: &S) -> Vec<String> {
    let mut v: Vec<String> = s
        .names
        // deep-lint: allow(unordered-iter) — sorted before exposure
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    v.sort();
    v
}
";
        assert!(run(with_reason).is_empty());
        let no_reason = "
struct S { names: HashMap<String, u32> }
// deep-lint: allow(unordered-iter)
fn f(s: &S) -> usize { s.names.keys().count() }
";
        let fired = rules_fired(no_reason);
        assert!(fired.contains(&Rule::MalformedPragma));
        assert!(
            fired.contains(&Rule::UnorderedIter),
            "bad pragma must not suppress"
        );
    }

    #[test]
    fn d2_fires_on_clock_env_rng() {
        assert!(rules_fired("fn f() { let t = Instant::now(); }").contains(&Rule::AmbientAuthority));
        assert!(rules_fired("fn f() { let v = std::env::var(\"X\"); }")
            .contains(&Rule::AmbientAuthority));
        assert!(rules_fired("use std::env;").contains(&Rule::AmbientAuthority));
        assert!(
            rules_fired("fn f() { let mut r = thread_rng(); }").contains(&Rule::AmbientAuthority)
        );
        // Duration is a span, not a clock read.
        assert!(run("use std::time::Duration;").is_empty());
    }

    #[test]
    fn d3_fires_at_chain_depth_only() {
        let bad = "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * 2.0).sum::<f64>() }";
        assert!(rules_fired(bad).contains(&Rule::UnorderedFloatReduce));
        // The inner sequential sum lives inside the map closure (deeper
        // depth) and the chain ends at collect: no finding.
        let good = "
fn f(xs: &[Vec<f64>]) -> Vec<f64> {
    xs.par_iter().map(|v| v.iter().sum::<f64>()).collect()
}
";
        assert!(run(good).is_empty());
    }

    #[test]
    fn s1_accepts_safety_walks_attrs_rejects_bare() {
        let documented = "
fn f(p: *const u32) -> u32 {
    // SAFETY: p is valid for the whole call per the caller contract.
    unsafe { *p }
}
";
        assert!(run(documented).is_empty());
        let through_attr = "
// SAFETY: the wrapper is only constructed around Send data.
#[allow(dead_code)]
unsafe impl Send for W {}
struct W(*const u8);
";
        assert!(run(through_attr).is_empty());
        let bare = "fn f(p: *const u32) -> u32 { unsafe { *p } }";
        assert!(rules_fired(bare).contains(&Rule::UndocumentedUnsafe));
        // A fn-pointer type is not an unsafe site.
        assert!(run("struct J { exec: unsafe fn(*const ()) }").is_empty());
    }

    #[test]
    fn s2_checks_crate_roots() {
        assert!(
            check_crate_root("lib.rs", "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}")
                .is_none()
        );
        let f = check_crate_root("lib.rs", "pub fn f() {}").unwrap();
        assert_eq!(f.rule, Rule::MissingForbidUnsafe);
        // The attribute inside a comment or string does not count.
        assert!(check_crate_root("lib.rs", "// #![forbid(unsafe_code)]\npub fn f() {}").is_some());
    }

    #[test]
    fn pragma_grammar_errors_are_reported() {
        let unknown = "// deep-lint: allow(no-such-rule) — because\nfn f() {}";
        assert!(rules_fired(unknown).contains(&Rule::MalformedPragma));
        let empty = "// deep-lint: allow() — because\nfn f() {}";
        assert!(rules_fired(empty).contains(&Rule::MalformedPragma));
        let fine =
            "// deep-lint: allow(unordered-iter, ambient-authority) — test corpus\nfn f() {}";
        assert!(run(fine).is_empty());
    }
}
