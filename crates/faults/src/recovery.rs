//! End-to-end crash/recovery driver: a tiled Cholesky factorisation that
//! checkpoints through the DEEP-ER storage hierarchy and survives
//! injected crashes.
//!
//! The driver factors a real SPD matrix panel by panel (the same tile
//! kernels the OmpSs showcase uses), pays virtual compute time per
//! panel, and checkpoints every few panels under the SCR-style L1/L2/L3
//! rotation. A crash invalidates checkpoint levels according to its
//! severity; recovery restores the newest surviving checkpoint *and* the
//! matching matrix state, then recomputes from there. Because every
//! kernel is deterministic, the factor after any crash schedule is
//! bitwise identical to the fault-free one — that is the whole point,
//! and the e2e tests assert exactly that.

use std::collections::BTreeMap;

use deep_apps::cholesky::{gemm_nt, potrf, spd_matrix, syrk, trsm, TiledMatrix};
use deep_core::{DeepConfig, DeepMachine};
use deep_io::{CkptLevel, FailureSeverity};
use deep_simkit::{SimDuration, Simulation};

/// Parameters of one crash/recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryParams {
    /// Tiles per matrix side (the factorisation runs `nt` panels).
    pub nt: usize,
    /// Elements per tile side.
    pub ts: usize,
    /// Checkpoint after every `ckpt_every` panels (0 = never).
    pub ckpt_every: usize,
    /// Every `l2_every`-th checkpoint goes to the buddy (0 = never).
    pub l2_every: u32,
    /// Every `l3_every`-th checkpoint goes to the PFS (0 = never;
    /// precedence over L2).
    pub l3_every: u32,
    /// Checkpoint payload per rank.
    pub bytes_per_rank: u64,
    /// Virtual compute time per panel, seconds.
    pub panel_s: f64,
    /// Reboot/relaunch cost paid after each crash, seconds.
    pub restart_s: f64,
    /// Crash schedule: `(panel, severity)` — the node dies just as panel
    /// `panel` is about to start (after the restore that position may be
    /// reached a second time; each entry fires once, in order).
    pub crashes: Vec<(usize, FailureSeverity)>,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        RecoveryParams {
            nt: 6,
            ts: 8,
            ckpt_every: 2,
            l2_every: 2,
            l3_every: 4,
            bytes_per_rank: 4 << 20,
            panel_s: 0.5,
            restart_s: 1.0,
            crashes: Vec::new(),
        }
    }
}

/// Outcome of one crash/recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// The dense lower factor after all panels completed.
    pub factor: Vec<f64>,
    /// Wall time of the whole run.
    pub elapsed: SimDuration,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Crashes suffered.
    pub failures: u64,
    /// Per crash: the level and mark recovered from, or `None` when no
    /// checkpoint survived and the run restarted from scratch.
    pub restores: Vec<Option<(CkptLevel, u64)>>,
}

/// The driver's rotation (same shape as the analytic model's).
fn rotation(count: u64, l2_every: u32, l3_every: u32) -> CkptLevel {
    if l3_every > 0 && count.is_multiple_of(l3_every as u64) {
        CkptLevel::L3Pfs
    } else if l2_every > 0 && count.is_multiple_of(l2_every as u64) {
        CkptLevel::L2Partner
    } else {
        CkptLevel::L1Local
    }
}

/// Factor panel `k` of the tiled matrix in place (right-looking).
fn factor_panel(m: &TiledMatrix, k: usize) {
    let (nt, ts) = (m.nt, m.ts);
    potrf(&mut m.tile(k, k).borrow_mut(), ts);
    for i in k + 1..nt {
        let l = m.tile(k, k);
        let b = m.tile(i, k);
        trsm(&l.borrow(), &mut b.borrow_mut(), ts);
    }
    for i in k + 1..nt {
        for j in k + 1..i {
            let a = m.tile(i, k);
            let b = m.tile(j, k);
            let c = m.tile(i, j);
            gemm_nt(&a.borrow(), &b.borrow(), &mut c.borrow_mut(), ts);
        }
        let a = m.tile(i, k);
        let c = m.tile(i, i);
        syrk(&a.borrow(), &mut c.borrow_mut(), ts);
    }
}

/// Deep-copy of the tile contents (the checkpoint payload's stand-in).
fn snapshot(m: &TiledMatrix) -> Vec<Vec<f64>> {
    m.tiles.iter().map(|t| t.borrow().clone()).collect()
}

/// Overwrite the tiles from a snapshot.
fn restore_tiles(m: &TiledMatrix, snap: &[Vec<f64>]) {
    for (dst, src) in m.tiles.iter().zip(snap) {
        *dst.borrow_mut() = src.clone();
    }
}

/// Run the factorisation with the given crash schedule on a fresh
/// machine. Deterministic in `(config, ranks, params, seed)`.
pub fn run_cholesky_with_recovery(
    config: &DeepConfig,
    ranks: u32,
    params: &RecoveryParams,
    seed: u64,
) -> RecoveryOutcome {
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, config.clone());
    let mgr = machine.checkpoint_manager(ranks);
    let p = params.clone();
    let job = {
        let ctx = ctx.clone();
        let mgr = mgr.clone();
        async move {
            let start = ctx.now();
            let n = p.nt * p.ts;
            let a0 = spd_matrix(n);
            let m = TiledMatrix::from_dense(&a0, p.nt, p.ts);
            // Snapshots keyed by mark (= panels completed): the matrix
            // state each committed checkpoint corresponds to.
            let mut snapshots: BTreeMap<u64, Vec<Vec<f64>>> = BTreeMap::new();
            let mut crashes = p.crashes.iter();
            let mut pending = crashes.next();
            let mut k = 0usize;
            let mut checkpoints = 0u64;
            let mut failures = 0u64;
            let mut restores = Vec::new();
            while k < p.nt {
                if let Some(&(panel, severity)) = pending {
                    if panel == k {
                        pending = crashes.next();
                        failures += 1;
                        mgr.fail(severity);
                        ctx.sleep(SimDuration::from_secs_f64(p.restart_s)).await;
                        match mgr.restore(p.bytes_per_rank).await {
                            Some(op) => {
                                restore_tiles(&m, &snapshots[&op.mark]);
                                k = op.mark as usize;
                                restores.push(Some((op.level, op.mark)));
                            }
                            None => {
                                let fresh = TiledMatrix::from_dense(&a0, p.nt, p.ts);
                                restore_tiles(&m, &snapshot(&fresh));
                                k = 0;
                                restores.push(None);
                            }
                        }
                        continue;
                    }
                }
                factor_panel(&m, k);
                ctx.sleep(SimDuration::from_secs_f64(p.panel_s)).await;
                k += 1;
                if k < p.nt && p.ckpt_every > 0 && k.is_multiple_of(p.ckpt_every) {
                    checkpoints += 1;
                    let level = rotation(checkpoints, p.l2_every, p.l3_every);
                    mgr.checkpoint(level, p.bytes_per_rank, k as u64).await;
                    snapshots.insert(k as u64, snapshot(&m));
                }
            }
            RecoveryOutcome {
                factor: m.to_dense(),
                elapsed: ctx.now() - start,
                checkpoints,
                failures,
                restores,
            }
        }
    };
    let h = sim.spawn("cholesky-recovery", job);
    sim.run().assert_completed();
    h.try_result().expect("recovery driver completes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_apps::cholesky::factorisation_error;

    #[test]
    fn fault_free_run_factors_correctly() {
        let p = RecoveryParams::default();
        let out = run_cholesky_with_recovery(&DeepConfig::small(), 4, &p, 7);
        let n = p.nt * p.ts;
        let a = spd_matrix(n);
        assert!(factorisation_error(&out.factor, &a, n) < 1e-9);
        assert_eq!(out.failures, 0);
        assert_eq!(out.checkpoints, 2);
        // 6 panels at 0.5 s plus two checkpoints.
        assert!(out.elapsed >= SimDuration::from_secs_f64(3.0));
    }

    #[test]
    fn rotation_matches_the_analytic_shape() {
        assert_eq!(rotation(1, 2, 4), CkptLevel::L1Local);
        assert_eq!(rotation(2, 2, 4), CkptLevel::L2Partner);
        assert_eq!(rotation(4, 2, 4), CkptLevel::L3Pfs);
        assert_eq!(rotation(3, 0, 0), CkptLevel::L1Local);
    }

    #[test]
    fn transient_crash_recovers_from_l1() {
        let p = RecoveryParams {
            crashes: vec![(3, FailureSeverity::Transient)],
            ..RecoveryParams::default()
        };
        let out = run_cholesky_with_recovery(&DeepConfig::small(), 4, &p, 7);
        assert_eq!(out.failures, 1);
        assert_eq!(out.restores, vec![Some((CkptLevel::L1Local, 2))]);
    }

    #[test]
    fn crash_before_any_checkpoint_restarts_from_scratch() {
        let p = RecoveryParams {
            crashes: vec![(1, FailureSeverity::MultiNodeLoss)],
            ..RecoveryParams::default()
        };
        let out = run_cholesky_with_recovery(&DeepConfig::small(), 4, &p, 7);
        assert_eq!(out.restores, vec![None]);
        let n = p.nt * p.ts;
        let a = spd_matrix(n);
        assert!(factorisation_error(&out.factor, &a, n) < 1e-9);
    }
}
