//! Declarative, seeded fault plans over virtual time.
//!
//! A [`FaultPlan`] is an ordered schedule of [`FaultEvent`]s — the *what*
//! and *when* of every failure a run will suffer, fixed before the
//! simulation starts. Plans are plain data: they can be generated from a
//! seed (Poisson crash arrivals, periodic link flaps), merged, inspected
//! and replayed, and the same plan on the same machine always produces
//! the same trace. The *how* of applying a plan lives in
//! [`crate::inject::spawn_injector`].

use deep_io::FailureSeverity;
use deep_simkit::{SimDuration, SimRng};

/// Which fabric (and node population) a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// The InfiniBand cluster side.
    Cluster,
    /// The EXTOLL booster side.
    Booster,
}

impl Domain {
    /// Stable name for traces and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Cluster => "cluster",
            Domain::Booster => "booster",
        }
    }
}

/// One kind of injected failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Every link of the fabric degrades to the given per-segment CRC
    /// error rate for a window — transfers slow down under link-level
    /// retransmission but keep completing.
    LinkDegrade {
        /// Fabric to degrade.
        domain: Domain,
        /// Per-segment error probability while degraded.
        error_rate: f64,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
    /// One NIC drops whole transfers with the given probability for a
    /// window — callers see hard `Err` failures and must retry.
    NicDrop {
        /// Fabric of the faulty NIC.
        domain: Domain,
        /// Node whose NIC misbehaves.
        node: u32,
        /// Probability that a transfer through this NIC is dropped.
        drop_prob: f64,
        /// How long the NIC misbehaves.
        duration: SimDuration,
    },
    /// Crash-stop of a whole node: its fabric port goes dark permanently
    /// and the failure is reported to the resource manager and the
    /// checkpoint log (with this severity).
    NodeCrash {
        /// Fabric the node lives on.
        domain: Domain,
        /// The crashed node.
        node: u32,
        /// How much state the crash takes with it.
        severity: FailureSeverity,
    },
    /// A booster interface goes dark for a window (firmware reboot):
    /// bridge traffic must fail over to the remaining BIs.
    BiFail {
        /// Index into the machine's BI list.
        index: usize,
        /// How long the BI is gone.
        duration: SimDuration,
    },
    /// A PFS server stalls: its disk array absorbs a background burst of
    /// `bytes`, delaying every checkpoint stripe queued behind it.
    PfsStall {
        /// Index of the stalled server.
        server: usize,
        /// Size of the burst keeping the device busy.
        bytes: u64,
    },
}

/// A fault at a point in virtual time (relative to injector start).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimDuration,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered fault schedule. Construction sorts events by time with a
/// stable sort, so ties keep their insertion order — a plan is a pure
/// function of its inputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from arbitrary events (sorted by time, stable).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// The schedule, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Consume the plan into its ordered events.
    pub fn into_events(self) -> Vec<FaultEvent> {
        self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merge two plans into one ordered schedule.
    pub fn merge(self, other: FaultPlan) -> FaultPlan {
        let mut events = self.events;
        events.extend(other.events);
        FaultPlan::new(events)
    }

    /// Poisson crash arrivals over `n_nodes` nodes of `domain` with the
    /// given per-node MTBF, up to `horizon_s`: inter-arrival times are
    /// exponential at the *system* rate `n_nodes / mtbf_node_s`, the
    /// struck node is uniform, and the severity is drawn from
    /// `severity_weights` ([transient, node loss, multi-node loss]).
    /// Deterministic in `(seed, stream)`.
    pub fn poisson_crashes(
        domain: Domain,
        n_nodes: u32,
        mtbf_node_s: f64,
        horizon_s: f64,
        severity_weights: [f64; 3],
        seed: u64,
        stream: u64,
    ) -> FaultPlan {
        assert!(n_nodes > 0 && mtbf_node_s > 0.0 && horizon_s > 0.0);
        let mut rng = SimRng::from_seed_stream(seed, stream);
        let system_mtbf = mtbf_node_s / n_nodes as f64;
        let mut events = Vec::new();
        let mut t = rng.gen_exp(system_mtbf);
        while t < horizon_s {
            let node = rng.gen_range(0..n_nodes);
            let severity = draw_weighted_severity(&mut rng, severity_weights);
            events.push(FaultEvent {
                at: SimDuration::from_secs_f64(t),
                kind: FaultKind::NodeCrash {
                    domain,
                    node,
                    severity,
                },
            });
            t += rng.gen_exp(system_mtbf);
        }
        FaultPlan::new(events)
    }

    /// `count` periodic link flaps on `domain`: starting at `first_s`,
    /// every `period_s` the fabric degrades to `error_rate` for
    /// `flap_s` seconds and then heals.
    pub fn link_flaps(
        domain: Domain,
        first_s: f64,
        period_s: f64,
        error_rate: f64,
        flap_s: f64,
        count: u32,
    ) -> FaultPlan {
        assert!(period_s > 0.0 && flap_s > 0.0);
        let events = (0..count)
            .map(|i| FaultEvent {
                at: SimDuration::from_secs_f64(first_s + i as f64 * period_s),
                kind: FaultKind::LinkDegrade {
                    domain,
                    error_rate,
                    duration: SimDuration::from_secs_f64(flap_s),
                },
            })
            .collect();
        FaultPlan::new(events)
    }
}

/// Weighted severity draw, mirroring the analytic model's mix
/// ([transient, node loss, multi-node loss]).
fn draw_weighted_severity(rng: &mut SimRng, weights: [f64; 3]) -> FailureSeverity {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "severity weights must not all be zero");
    let mut u = rng.gen_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u < 0.0 {
            return FailureSeverity::ALL[i];
        }
    }
    FailureSeverity::MultiNodeLoss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_sorted_and_stable() {
        let a = FaultEvent {
            at: SimDuration::secs(5),
            kind: FaultKind::PfsStall {
                server: 0,
                bytes: 1,
            },
        };
        let b = FaultEvent {
            at: SimDuration::secs(1),
            kind: FaultKind::PfsStall {
                server: 1,
                bytes: 2,
            },
        };
        let c = FaultEvent {
            at: SimDuration::secs(5),
            kind: FaultKind::PfsStall {
                server: 2,
                bytes: 3,
            },
        };
        let plan = FaultPlan::new(vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(plan.events(), &[b, a, c]);
    }

    #[test]
    fn poisson_crashes_are_deterministic_in_the_seed() {
        let gen = || {
            FaultPlan::poisson_crashes(Domain::Booster, 8, 50.0, 200.0, [0.7, 0.25, 0.05], 42, 7)
        };
        let p1 = gen();
        assert_eq!(p1, gen());
        assert!(!p1.is_empty(), "200 s at system MTBF 6.25 s must crash");
        // Sorted, in-horizon, nodes in range.
        let mut last = SimDuration::ZERO;
        for ev in p1.events() {
            assert!(ev.at >= last && ev.at < SimDuration::secs(200));
            last = ev.at;
            match ev.kind {
                FaultKind::NodeCrash { node, .. } => assert!(node < 8),
                ref other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn different_streams_give_different_plans() {
        let p = |stream| {
            FaultPlan::poisson_crashes(Domain::Cluster, 4, 30.0, 300.0, [1.0, 1.0, 1.0], 9, stream)
        };
        assert_ne!(p(1), p(2));
    }

    #[test]
    fn link_flaps_are_periodic() {
        let plan = FaultPlan::link_flaps(Domain::Booster, 1.0, 10.0, 0.3, 2.0, 3);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.events()[1].at, SimDuration::from_secs_f64(11.0));
    }

    #[test]
    fn merge_interleaves_by_time() {
        let flaps = FaultPlan::link_flaps(Domain::Booster, 5.0, 10.0, 0.1, 1.0, 2);
        let stall = FaultPlan::new(vec![FaultEvent {
            at: SimDuration::secs(7),
            kind: FaultKind::PfsStall {
                server: 0,
                bytes: 1 << 20,
            },
        }]);
        let merged = flaps.merge(stall);
        let times: Vec<u64> = merged.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, vec![5_000_000_000, 7_000_000_000, 15_000_000_000]);
    }
}
