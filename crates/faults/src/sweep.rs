//! DES-vs-analytic cross-validation of the multi-level resilience model.
//!
//! [`des_multilevel_run`] executes the *same* scenario the analytic
//! Monte-Carlo model [`deep_core::simulate_multilevel`] computes — work
//! segments, the L1/L2/L3 checkpoint rotation, Poisson failures with a
//! severity mix, recovery from the newest surviving level — but with
//! every checkpoint and restore carried out as real simulated I/O on a
//! [`DeepMachine`] (NVM writes, torus replica pushes, PFS drains), and
//! failures interrupting the run wherever virtual time finds it.
//!
//! The two implementations draw from the *same* RNG stream in the same
//! order (one exponential per failure gap, one uniform per severity), so
//! a replica pair sees the same failure sequence and the efficiencies
//! must agree to within the discretisation error of the analytic model's
//! fixed per-level costs. [`fault_sweep`] runs the pairing across a
//! range of node MTBFs — experiment ER03.

use deep_core::{
    mark_of, measure_level_costs, DeepConfig, DeepMachine, MeanEfficiency, MultiLevelParams,
    ResilienceOutcome,
};
use deep_simkit::{Either, SimDuration, SimRng, Simulation};
use rayon::prelude::*;

/// One DES replica of the multi-level scenario. Deterministic in
/// `(config, ranks, bytes_per_rank, p, seed, stream)`; pair it with the
/// analytic model by drawing from the same `(seed, stream)`.
///
/// The per-level costs in `p.levels` are ignored — the machine itself
/// prices every checkpoint and restore.
pub fn des_multilevel_run(
    config: &DeepConfig,
    ranks: u32,
    bytes_per_rank: u64,
    p: &MultiLevelParams,
    seed: u64,
    stream: u64,
) -> ResilienceOutcome {
    assert!(p.interval_s > 0.0 && p.work_s > 0.0);
    assert!(
        p.mtbf_node_s.is_finite(),
        "the DES hazard needs a finite MTBF"
    );
    let mut sim = Simulation::new(seed);
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, config.clone());
    let mgr = machine.checkpoint_manager(ranks);
    let p = *p;
    let job = {
        let ctx = ctx.clone();
        let mgr = mgr.clone();
        async move {
            let mut rng = SimRng::from_seed_stream(seed, stream);
            let system_mtbf = p.mtbf_node_s / p.n_nodes as f64;
            let wall_cap = 1000.0 * p.work_s;
            let t0 = ctx.now();
            let mut done = 0.0f64;
            let mut failures = 0u64;
            let mut checkpoints = 0u64;
            let mut next_failure = rng.gen_exp(system_mtbf);
            while done < p.work_s && (ctx.now() - t0).as_secs_f64() < wall_cap {
                let segment = p.interval_s.min(p.work_s - done);
                let last = done + segment >= p.work_s;
                let level = p.level_for(checkpoints + 1);
                let mark = mark_of(done + segment);
                // The attempt: compute the segment, then commit its
                // checkpoint through the real storage hierarchy.
                let attempt = {
                    let ctx = ctx.clone();
                    let mgr = mgr.clone();
                    async move {
                        ctx.sleep(SimDuration::from_secs_f64(segment)).await;
                        if !last {
                            mgr.checkpoint(level, bytes_per_rank, mark).await;
                        }
                    }
                };
                // The hazard interrupts the attempt wherever it is; an
                // attempt finishing at the failure instant commits (the
                // race's left side wins ties, matching the analytic
                // model's `<=`). No failures strike during recovery —
                // the hazard only re-arms after the restore completes,
                // exactly as the analytic model advances its clock.
                let hazard = ctx.sleep_until(t0 + SimDuration::from_secs_f64(next_failure));
                match ctx.race(attempt, hazard).await {
                    Either::Left(()) => {
                        done += segment;
                        if !last {
                            checkpoints += 1;
                        }
                    }
                    Either::Right(()) => {
                        failures += 1;
                        let severity = p.draw_severity(&mut rng);
                        mgr.fail(severity);
                        ctx.sleep(SimDuration::from_secs_f64(p.restart_s)).await;
                        done = match mgr.restore(bytes_per_rank).await {
                            Some(op) => op.mark as f64 / 1e3,
                            None => 0.0,
                        };
                        next_failure = (ctx.now() - t0).as_secs_f64() + rng.gen_exp(system_mtbf);
                    }
                }
            }
            let wall_s = (ctx.now() - t0).as_secs_f64();
            (wall_s, done, failures, checkpoints)
        }
    };
    let h = sim.spawn("des-resilience", job);
    sim.run().assert_completed();
    let (wall_s, done, failures, checkpoints) = h.try_result().expect("replica completes");
    ResilienceOutcome {
        wall_s,
        efficiency: ResilienceOutcome::compute_efficiency(done.min(p.work_s), wall_s),
        failures,
        checkpoints,
        truncated: done < p.work_s,
    }
}

/// Mean DES efficiency over `replicas` runs, drawing from the same
/// streams as [`deep_core::mean_multilevel_efficiency`] (`0xE401 + r`).
pub fn des_mean_multilevel_efficiency(
    config: &DeepConfig,
    ranks: u32,
    bytes_per_rank: u64,
    p: &MultiLevelParams,
    seed: u64,
    replicas: u32,
) -> MeanEfficiency {
    // Replicas are independent simulations on index-derived streams, so
    // they fan out across the pool; the ordered collect plus the
    // sequential fold below keep the mean bit-identical to the serial
    // loop at any thread count.
    let outcomes: Vec<ResilienceOutcome> = (0..replicas)
        .into_par_iter()
        .map(|r| des_multilevel_run(config, ranks, bytes_per_rank, p, seed, 0xE401 + r as u64))
        .collect();
    let mut total = 0.0;
    let mut truncated_runs = 0;
    for out in &outcomes {
        total += out.efficiency;
        truncated_runs += u32::from(out.truncated);
    }
    MeanEfficiency {
        efficiency: total / replicas as f64,
        truncated_runs,
    }
}

/// One point of the ER03 sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Per-node MTBF at this point, seconds.
    pub mtbf_node_s: f64,
    /// Mean efficiency of the discrete-event replicas.
    pub des: MeanEfficiency,
    /// Mean efficiency of the analytic Monte-Carlo model, fed the level
    /// costs measured on the same machine.
    pub mc: MeanEfficiency,
}

/// Sweep node MTBF, cross-validating the DES against the analytic model
/// at every point. `base.levels` is overwritten with costs measured on
/// `config` (so both sides price checkpoints identically) and
/// `base.mtbf_node_s` with each swept value.
pub fn fault_sweep(
    config: &DeepConfig,
    ranks: u32,
    bytes_per_rank: u64,
    base: &MultiLevelParams,
    mtbfs_node_s: &[f64],
    seed: u64,
    replicas: u32,
) -> Vec<SweepPoint> {
    assert!(replicas > 0, "at least one replica per sweep point");
    let costs = measure_level_costs(config, ranks, bytes_per_rank, seed);
    let params: Vec<MultiLevelParams> = mtbfs_node_s
        .iter()
        .map(|&mtbf_node_s| {
            let mut p = *base;
            p.levels = costs;
            p.mtbf_node_s = mtbf_node_s;
            p
        })
        .collect();

    // One flat (point × replica) grid of whole-DES work units instead
    // of nested drives (points outside, replicas inside): every unit is
    // an independent simulation and, with the leaf cap at 1, is
    // individually stealable — no point can become a serial tail while
    // other workers idle. Bit-identity with the nested form is by
    // construction: replica `r`'s stream is `0xE401 + r` regardless of
    // its point, results land in index-ordered slots, and each point's
    // chunk is reduced in replica order below with the same fold
    // (`deep_core::reduce_outcomes`) the per-point mean uses.
    let rep = replicas as usize;
    let des_outcomes: Vec<ResilienceOutcome> = (0..params.len() * rep)
        .into_par_iter()
        .with_max_len(1)
        .map(|u| {
            let r = (u % rep) as u64;
            des_multilevel_run(
                config,
                ranks,
                bytes_per_rank,
                &params[u / rep],
                seed,
                0xE401 + r,
            )
        })
        .collect();
    // The analytic side flattens the same way inside the batch API.
    let mc = deep_core::mean_multilevel_efficiency_batch(&params, seed, replicas);

    params
        .iter()
        .zip(des_outcomes.chunks_exact(rep))
        .zip(mc)
        .map(|((p, des_chunk), mc)| SweepPoint {
            mtbf_node_s: p.mtbf_node_s,
            des: deep_core::reduce_outcomes(des_chunk, replicas),
            mc,
        })
        .collect()
}

/// The ER03 scenario: a 40 s job on the small machine's 8 booster
/// ranks, checkpointing 8 MiB per rank every 2 s under the 2/4
/// rotation. Level costs are placeholders until [`fault_sweep`]
/// measures them.
pub fn er03_params() -> (DeepConfig, u32, u64, MultiLevelParams) {
    let config = DeepConfig::small();
    let ranks = 8;
    let bytes_per_rank = 8 << 20;
    let p = MultiLevelParams {
        work_s: 40.0,
        n_nodes: ranks as u64,
        mtbf_node_s: 400.0,
        interval_s: 2.0,
        levels: [deep_core::LevelCost {
            write_s: 0.1,
            restore_s: 0.1,
        }; 3],
        l2_every: 2,
        l3_every: 4,
        restart_s: 2.0,
        severity_weights: [0.6, 0.3, 0.1],
    };
    (config, ranks, bytes_per_rank, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_run_is_deterministic() {
        let (config, ranks, bytes, mut p) = er03_params();
        p.work_s = 10.0;
        p.mtbf_node_s = 200.0;
        let a = des_multilevel_run(&config, ranks, bytes, &p, 11, 0xE401);
        let b = des_multilevel_run(&config, ranks, bytes, &p, 11, 0xE401);
        assert_eq!(a.wall_s, b.wall_s);
        assert_eq!(a.efficiency, b.efficiency);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.checkpoints, b.checkpoints);
    }

    #[test]
    fn failure_free_des_pays_only_checkpoint_overhead() {
        let (config, ranks, bytes, mut p) = er03_params();
        p.work_s = 10.0;
        p.mtbf_node_s = 1e12; // effectively failure-free
        let out = des_multilevel_run(&config, ranks, bytes, &p, 3, 0xE401);
        assert_eq!(out.failures, 0);
        assert!(!out.truncated);
        assert_eq!(out.checkpoints, 4); // 5 segments, last elides
        assert!(
            out.efficiency > 0.8 && out.efficiency < 1.0,
            "efficiency {}",
            out.efficiency
        );
    }

    #[test]
    fn flakier_nodes_cost_des_efficiency() {
        let (config, ranks, bytes, mut p) = er03_params();
        p.work_s = 20.0;
        let eff = |mtbf: f64| {
            let mut q = p;
            q.mtbf_node_s = mtbf;
            des_mean_multilevel_efficiency(&config, ranks, bytes, &q, 5, 3).efficiency
        };
        let flaky = eff(80.0);
        let solid = eff(4000.0);
        assert!(flaky < solid, "flaky {flaky} vs solid {solid}");
    }

    #[test]
    fn des_and_analytic_pair_up_per_replica() {
        // Same stream ⇒ same failure sequence. The DES prices each
        // checkpoint with real (state-dependent) I/O while the analytic
        // model uses one fixed cost per level, so near an attempt
        // boundary the two may disagree on whether a segment committed
        // before the failure — allow one failure of slack and a modest
        // efficiency gap per replica (the ER03 acceptance bound is on
        // the mean).
        let (config, ranks, bytes, mut p) = er03_params();
        p.work_s = 20.0;
        p.mtbf_node_s = 150.0;
        p.levels = measure_level_costs(&config, ranks, bytes, 5);
        for r in 0..3u64 {
            let des = des_multilevel_run(&config, ranks, bytes, &p, 5, 0xE401 + r);
            let mut rng = SimRng::from_seed_stream(5, 0xE401 + r);
            let mc = deep_core::simulate_multilevel(&p, &mut rng);
            let count_gap = des.failures.abs_diff(mc.failures);
            assert!(
                count_gap <= 1,
                "replica {r}: {} DES vs {} MC failures",
                des.failures,
                mc.failures
            );
            let gap = (des.efficiency - mc.efficiency).abs();
            assert!(
                gap < 0.15,
                "replica {r}: DES {} vs MC {} (gap {gap})",
                des.efficiency,
                mc.efficiency
            );
        }
    }
}
