//! # deep-faults — deterministic fault injection for the DEEP machine
//!
//! Failures on the real DEEP prototype were a fact of life (slide 16's
//! RAS machinery exists for a reason); this crate makes them a
//! first-class, *reproducible* simulation input:
//!
//! * [`plan`] — seeded, declarative [`FaultPlan`]s: EXTOLL/IB link
//!   degradation and flaps, NIC packet drops, whole-node crash-stops,
//!   booster-interface outages and PFS-server stalls, each scheduled at
//!   a virtual-time instant or generated from a Poisson hazard;
//! * [`inject`] — [`spawn_injector`] replays a plan against a live
//!   machine, healing windowed faults afterwards; the same plan on the
//!   same seed always produces the same trace;
//! * [`recovery`] — an end-to-end crash/restart driver: a tiled Cholesky
//!   that checkpoints through the DEEP-ER L1/L2/L3 hierarchy, loses
//!   nodes mid-run, restores from the newest surviving level and still
//!   produces a bitwise-identical factor;
//! * [`sweep`] — experiment ER03: the discrete-event resilience run
//!   mirrored draw-for-draw against the analytic Monte-Carlo model
//!   ([`deep_core::simulate_multilevel`]), swept over node MTBF.
//!
//! Detection and reaction live in the component crates (CBP retry and
//! BI failover, resource-manager node replacement, the checkpoint
//! manager's commit log); this crate supplies the failures and the
//! end-to-end proofs that the stack rides them out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod plan;
pub mod recovery;
pub mod sweep;

pub use inject::{spawn_injector, InjectionRecord, InjectorTargets};
pub use plan::{Domain, FaultEvent, FaultKind, FaultPlan};
pub use recovery::{run_cholesky_with_recovery, RecoveryOutcome, RecoveryParams};
pub use sweep::{
    des_mean_multilevel_efficiency, des_multilevel_run, er03_params, fault_sweep, SweepPoint,
};
