//! Applying a [`FaultPlan`] to a live machine.
//!
//! [`spawn_injector`] runs the plan as one simulation process: it sleeps
//! to each event's time, applies the fault to whichever components the
//! [`InjectorTargets`] carry, and (for windowed faults) spawns a healer
//! that undoes the damage after the window. Events whose target
//! component is absent — or whose node index is out of range — are
//! recorded as skipped rather than applied, so *any* plan is safe to run
//! against *any* subset of the machine.

use std::rc::Rc;

use deep_cbp::CbpWire;
use deep_fabric::{ExtollFabric, FaultModel, IbFabric, Network, NodeId};
use deep_io::{CheckpointManager, ParallelFs};
use deep_resmgr::ResMgr;
use deep_simkit::{ProcHandle, Sim, SimTime};

use crate::plan::{Domain, FaultKind, FaultPlan};

/// The components a fault plan acts on. All optional: an injector only
/// touches what it is given.
#[derive(Clone, Default)]
pub struct InjectorTargets {
    /// The booster's EXTOLL fabric.
    pub extoll: Option<Rc<ExtollFabric>>,
    /// The cluster's InfiniBand fabric.
    pub ib: Option<Rc<IbFabric>>,
    /// The cluster–booster protocol bridge (for BI lookups).
    pub cbp: Option<Rc<CbpWire>>,
    /// The resource manager (notified of node crashes).
    pub resmgr: Option<Rc<ResMgr>>,
    /// The checkpoint manager (its commit log sees crash severities).
    pub ckpt: Option<Rc<CheckpointManager>>,
    /// The parallel file system (for server stalls).
    pub pfs: Option<Rc<ParallelFs>>,
}

/// What the injector actually did at one event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Virtual time the event was processed.
    pub at: SimTime,
    /// Human-readable description, prefixed `skip:` when the event had
    /// no applicable target.
    pub what: String,
}

fn net_for(t: &InjectorTargets, domain: Domain) -> Option<Rc<Network>> {
    match domain {
        Domain::Cluster => t.ib.as_ref().map(|f| f.network().clone()),
        Domain::Booster => t.extoll.as_ref().map(|f| f.network().clone()),
    }
}

/// Run `plan` against `targets` as a background process. The handle
/// resolves to the record of everything applied (and skipped), in order.
pub fn spawn_injector(
    sim: &Sim,
    plan: FaultPlan,
    targets: InjectorTargets,
) -> ProcHandle<Vec<InjectionRecord>> {
    let ctx = sim.clone();
    sim.spawn("fault-injector", async move {
        let t0 = ctx.now();
        let mut records = Vec::with_capacity(plan.len());
        // Intern the key once rather than hashing "faults"/"inject" per event.
        let k_inject = ctx.trace_key("faults", "inject");
        for ev in plan.into_events() {
            ctx.sleep_until(t0 + ev.at).await;
            let what = apply(&ctx, &targets, &ev.kind);
            ctx.emit_key(k_inject, || what.clone());
            records.push(InjectionRecord {
                at: ctx.now(),
                what,
            });
        }
        records
    })
}

/// Apply one fault. Returns the description of what happened.
fn apply(sim: &Sim, t: &InjectorTargets, kind: &FaultKind) -> String {
    match *kind {
        FaultKind::LinkDegrade {
            domain,
            error_rate,
            duration,
        } => {
            let Some(net) = net_for(t, domain) else {
                return format!("skip: link-degrade {} (no fabric)", domain.name());
            };
            let healthy = net.fault_model();
            // Degradation slows transfers via link-level retransmission;
            // keep enough retries that it does not become a hard failure.
            net.set_fault_model(FaultModel {
                segment_error_rate: error_rate.clamp(0.0, 1.0),
                max_retries: healthy.max_retries.max(32),
            });
            let ctx = sim.clone();
            sim.spawn("fault-heal-links", async move {
                ctx.sleep(duration).await;
                net.set_fault_model(healthy);
                ctx.emit("faults", "heal", || {
                    format!("links healed to error rate {}", healthy.segment_error_rate)
                });
            });
            format!(
                "link-degrade {} to {error_rate} for {duration}",
                domain.name()
            )
        }
        FaultKind::NicDrop {
            domain,
            node,
            drop_prob,
            duration,
        } => {
            let Some(net) = net_for(t, domain) else {
                return format!("skip: nic-drop {} n{node} (no fabric)", domain.name());
            };
            if node as usize >= net.num_nodes() {
                return format!("skip: nic-drop {} n{node} (out of range)", domain.name());
            }
            net.set_node_drop_prob(NodeId(node), drop_prob.clamp(0.0, 1.0));
            let ctx = sim.clone();
            sim.spawn("fault-heal-nic", async move {
                ctx.sleep(duration).await;
                net.set_node_drop_prob(NodeId(node), 0.0);
                ctx.emit("faults", "heal", || format!("nic {node} healed"));
            });
            format!(
                "nic-drop {} n{node} p={drop_prob} for {duration}",
                domain.name()
            )
        }
        FaultKind::NodeCrash {
            domain,
            node,
            severity,
        } => {
            let mut hit = false;
            if let Some(net) = net_for(t, domain) {
                if (node as usize) < net.num_nodes() {
                    net.set_node_down(NodeId(node), true);
                    hit = true;
                }
            }
            if let Some(rm) = &t.resmgr {
                match domain {
                    Domain::Booster => {
                        rm.inject_booster_failure(1);
                    }
                    Domain::Cluster => {
                        rm.inject_cluster_failure(1);
                    }
                }
                hit = true;
            }
            if let Some(ckpt) = &t.ckpt {
                ckpt.fail(severity);
                hit = true;
            }
            if hit {
                format!("node-crash {} n{node} ({severity:?})", domain.name())
            } else {
                format!("skip: node-crash {} n{node} (no target)", domain.name())
            }
        }
        FaultKind::BiFail { index, duration } => {
            let (Some(cbp), Some(ib)) = (&t.cbp, &t.ib) else {
                return format!("skip: bi-fail {index} (need cbp + ib)");
            };
            let bis = cbp.bi_nodes();
            if index >= bis.len() {
                return format!("skip: bi-fail {index} (out of range)");
            }
            let host = bis[index].0;
            ib.set_node_down(host, true);
            let ib = ib.clone();
            let ctx = sim.clone();
            sim.spawn("fault-heal-bi", async move {
                ctx.sleep(duration).await;
                ib.set_node_down(host, false);
                ctx.emit("faults", "heal", || format!("bi {index} back up"));
            });
            format!("bi-fail {index} (ib host {host}) for {duration}")
        }
        FaultKind::PfsStall { server, bytes } => {
            let Some(pfs) = &t.pfs else {
                return format!("skip: pfs-stall s{server} (no pfs)");
            };
            if server >= pfs.n_servers() {
                return format!("skip: pfs-stall s{server} (out of range)");
            }
            let dev = pfs.server_device(server);
            sim.spawn("fault-pfs-stall", async move {
                dev.write(bytes).await;
            });
            format!("pfs-stall s{server} burst {bytes} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultEvent;
    use deep_io::CkptLevel;
    use deep_simkit::{SimDuration, Simulation};

    fn machine(sim: &Sim) -> (Rc<ExtollFabric>, Rc<IbFabric>) {
        (
            Rc::new(ExtollFabric::new(sim, (2, 2, 2))),
            Rc::new(IbFabric::new(sim, 4)),
        )
    }

    #[test]
    fn link_degrade_heals_after_the_window() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let (extoll, _) = machine(&ctx);
        let plan = FaultPlan::link_flaps(Domain::Booster, 1.0, 10.0, 0.25, 2.0, 1);
        let h = spawn_injector(
            &ctx,
            plan,
            InjectorTargets {
                extoll: Some(extoll.clone()),
                ..InjectorTargets::default()
            },
        );
        let net = extoll.network().clone();
        let ctx2 = ctx.clone();
        let probe = sim.spawn("probe", async move {
            ctx2.sleep(SimDuration::from_secs_f64(1.5)).await;
            let during = net.fault_model().segment_error_rate;
            ctx2.sleep(SimDuration::from_secs_f64(2.0)).await;
            let after = net.fault_model().segment_error_rate;
            (during, after)
        });
        sim.run().assert_completed();
        let (during, after) = probe.try_result().unwrap();
        assert_eq!(during, 0.25);
        assert_eq!(after, 0.0);
        assert_eq!(h.try_result().unwrap().len(), 1);
    }

    #[test]
    fn events_without_targets_are_skipped_not_fatal() {
        let mut sim = Simulation::new(2);
        let ctx = sim.handle();
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: SimDuration::secs(1),
                kind: FaultKind::PfsStall {
                    server: 0,
                    bytes: 1 << 20,
                },
            },
            FaultEvent {
                at: SimDuration::secs(2),
                kind: FaultKind::NodeCrash {
                    domain: Domain::Booster,
                    node: 99,
                    severity: deep_io::FailureSeverity::NodeLoss,
                },
            },
            FaultEvent {
                at: SimDuration::secs(3),
                kind: FaultKind::BiFail {
                    index: 5,
                    duration: SimDuration::secs(1),
                },
            },
        ]);
        let h = spawn_injector(&ctx, plan, InjectorTargets::default());
        sim.run().assert_completed();
        let records = h.try_result().unwrap();
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.what.starts_with("skip:")));
    }

    #[test]
    fn node_crash_reaches_fabric_and_commit_log() {
        let mut sim = Simulation::new(3);
        let ctx = sim.handle();
        let (extoll, ib) = machine(&ctx);
        let servers = vec![NodeId(2), NodeId(3)];
        let pfs = ParallelFs::new(&ctx, ib.clone(), &servers, &deep_io::PfsConfig::default());
        let mgr = CheckpointManager::new(
            &ctx,
            extoll.clone(),
            pfs,
            vec![NodeId(0), NodeId(1)],
            vec![deep_io::BridgeNode {
                torus: NodeId(7),
                ib: NodeId(0),
            }],
            deep_io::DeviceSpec::nvm(),
        );
        let m = mgr.clone();
        let plan = FaultPlan::new(vec![FaultEvent {
            at: SimDuration::secs(1),
            kind: FaultKind::NodeCrash {
                domain: Domain::Booster,
                node: 5,
                severity: deep_io::FailureSeverity::NodeLoss,
            },
        }]);
        sim.spawn("ckpt", async move {
            m.checkpoint(CkptLevel::L1Local, 1 << 16, 1).await;
        });
        spawn_injector(
            &ctx,
            plan,
            InjectorTargets {
                extoll: Some(extoll.clone()),
                ckpt: Some(mgr.clone()),
                ..InjectorTargets::default()
            },
        );
        sim.run().assert_completed();
        assert!(extoll.is_node_down(NodeId(5)));
        // L1 does not survive a node loss: the commit log is empty.
        assert_eq!(mgr.log().best(), None);
    }

    #[test]
    fn pfs_stall_occupies_the_server_device() {
        let mut sim = Simulation::new(4);
        let ctx = sim.handle();
        let (_, ib) = machine(&ctx);
        let servers = vec![NodeId(2), NodeId(3)];
        let pfs = ParallelFs::new(&ctx, ib, &servers, &deep_io::PfsConfig::default());
        let plan = FaultPlan::new(vec![FaultEvent {
            at: SimDuration::ZERO,
            kind: FaultKind::PfsStall {
                server: 1,
                bytes: 8 << 20,
            },
        }]);
        spawn_injector(
            &ctx,
            plan,
            InjectorTargets {
                pfs: Some(pfs.clone()),
                ..InjectorTargets::default()
            },
        );
        sim.run().assert_completed();
        assert_eq!(pfs.server_device(1).stats().bytes_written, 8 << 20);
        assert_eq!(pfs.server_device(0).stats().bytes_written, 0);
    }
}
