//! Determinism under fault injection: the same seed and the same fault
//! plan must produce the *identical* trace — event for event, timestamp
//! for timestamp — across independent runs.

use std::rc::Rc;

use deep_cbp::{CbpFaultStats, CbpWireHandle};
use deep_core::{DeepConfig, DeepMachine};
use deep_faults::{spawn_injector, Domain, FaultEvent, FaultKind, FaultPlan, InjectorTargets};
use deep_psmpi::Wire;
use deep_simkit::{SimDuration, SimTime, Simulation};

/// A plan exercising every windowed fault kind: booster link flaps, a
/// cluster NIC that drops everything for a while, a BI outage forcing
/// failover, and a PFS server stall.
fn plan() -> FaultPlan {
    FaultPlan::link_flaps(Domain::Booster, 0.1, 0.5, 0.2, 0.2, 3).merge(FaultPlan::new(vec![
        FaultEvent {
            at: SimDuration::millis(100),
            kind: FaultKind::NicDrop {
                domain: Domain::Cluster,
                node: 1,
                drop_prob: 1.0,
                duration: SimDuration::millis(700),
            },
        },
        FaultEvent {
            at: SimDuration::millis(600),
            kind: FaultKind::BiFail {
                index: 0,
                duration: SimDuration::millis(500),
            },
        },
        FaultEvent {
            at: SimDuration::millis(900),
            kind: FaultKind::PfsStall {
                server: 0,
                bytes: 4 << 20,
            },
        },
    ]))
}

fn run_once(seed: u64) -> (Vec<(SimTime, String)>, CbpFaultStats, u64) {
    let mut sim = Simulation::new(seed);
    sim.enable_tracing();
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, DeepConfig::small());
    let cbp = machine.cbp().clone();
    let pfs = machine.pfs().clone();
    spawn_injector(
        &ctx,
        plan(),
        InjectorTargets {
            extoll: Some(machine.extoll().clone()),
            ib: Some(cbp.ib().clone()),
            cbp: Some(cbp.clone()),
            pfs: Some(pfs.clone()),
            ..InjectorTargets::default()
        },
    );
    // Cross-bridge traffic riding through the fault windows; failures
    // surface as Err results the senders shrug off.
    let wire = Rc::new(CbpWireHandle(cbp.clone()));
    for i in 0..8u32 {
        let wire = wire.clone();
        let cbp = cbp.clone();
        let ctx2 = ctx.clone();
        sim.spawn(format!("traffic-{i}"), async move {
            ctx2.sleep(SimDuration::millis(150 * u64::from(i))).await;
            let src = cbp.cluster_ep(i % 4);
            let dst = cbp.booster_ep(i % 8);
            let _ = wire.transfer(src, dst, 64 << 10).await;
        });
    }
    sim.run().assert_completed();
    let stalled = pfs.server_device(0).stats().bytes_written;
    (sim.take_trace(), cbp.fault_stats(), stalled)
}

#[test]
fn same_seed_and_plan_reproduce_the_trace_exactly() {
    let (t1, s1, b1) = run_once(77);
    let (t2, s2, b2) = run_once(77);
    assert!(!t1.is_empty(), "tracing must have recorded events");
    assert_eq!(t1.len(), t2.len());
    assert_eq!(t1, t2, "trace must be identical event for event");
    assert_eq!(s1, s2, "CBP fault counters must match");
    assert_eq!(b1, b2);
}

#[test]
fn the_plan_actually_bites() {
    let (trace, stats, stalled) = run_once(77);
    // The injector fired every scheduled event...
    let injects = trace
        .iter()
        .filter(|(_, m)| m.starts_with("[faults/inject]"))
        .count();
    assert_eq!(injects, plan().len());
    // ...the dropping NIC forced CBP retries...
    assert!(stats.retries >= 1, "expected retries, got {stats:?}");
    // ...and the PFS stall burst landed on the server device.
    assert_eq!(stalled, 4 << 20);
}

#[test]
fn different_fault_plans_change_the_trace() {
    let (with_faults, ..) = run_once(77);
    // Same seed, no faults: the machine must behave differently.
    let mut sim = Simulation::new(77);
    sim.enable_tracing();
    let ctx = sim.handle();
    let machine = DeepMachine::build(&ctx, DeepConfig::small());
    let cbp = machine.cbp().clone();
    let wire = Rc::new(CbpWireHandle(cbp.clone()));
    for i in 0..8u32 {
        let wire = wire.clone();
        let cbp = cbp.clone();
        let ctx2 = ctx.clone();
        sim.spawn(format!("traffic-{i}"), async move {
            ctx2.sleep(SimDuration::millis(150 * u64::from(i))).await;
            let src = cbp.cluster_ep(i % 4);
            let dst = cbp.booster_ep(i % 8);
            let _ = wire.transfer(src, dst, 64 << 10).await;
        });
    }
    sim.run().assert_completed();
    let clean = sim.take_trace();
    assert_ne!(with_faults, clean);
    assert_eq!(cbp.fault_stats(), CbpFaultStats::default());
}
