//! End-to-end crash/restart recovery: a tiled Cholesky checkpointing
//! through the DEEP-ER storage hierarchy is crashed mid-run at varying
//! severities, restores from the level that survived, and must produce a
//! factor **bitwise identical** to the fault-free run.

use deep_core::DeepConfig;
use deep_faults::{run_cholesky_with_recovery, RecoveryParams};
use deep_io::{CkptLevel, FailureSeverity};

const SEED: u64 = 21;

fn fault_free(p: &RecoveryParams) -> Vec<f64> {
    let mut q = p.clone();
    q.crashes.clear();
    run_cholesky_with_recovery(&DeepConfig::small(), 8, &q, SEED).factor
}

#[test]
fn transient_crash_restores_and_matches_bitwise() {
    // Default: 6 panels, checkpoints at panels 2 (L1) and 4 (L2).
    let p = RecoveryParams {
        crashes: vec![(3, FailureSeverity::Transient)],
        ..RecoveryParams::default()
    };
    let out = run_cholesky_with_recovery(&DeepConfig::small(), 8, &p, SEED);
    // Newest surviving mark is the L1 checkpoint at panel 2.
    assert_eq!(out.restores, vec![Some((CkptLevel::L1Local, 2))]);
    assert_eq!(out.factor, fault_free(&p), "factor must be bitwise equal");
}

#[test]
fn node_loss_falls_back_to_the_buddy_level() {
    // Crash after the L1 checkpoint at panel 6 (count 3): a node loss
    // wipes L1, so recovery must come from the older L2 copy at panel 4.
    let p = RecoveryParams {
        nt: 8,
        crashes: vec![(7, FailureSeverity::NodeLoss)],
        ..RecoveryParams::default()
    };
    let out = run_cholesky_with_recovery(&DeepConfig::small(), 8, &p, SEED);
    assert_eq!(out.restores, vec![Some((CkptLevel::L2Partner, 4))]);
    assert_eq!(out.factor, fault_free(&p));
}

#[test]
fn multi_node_loss_needs_the_pfs_level() {
    // 10 panels: checkpoints at 2 (L1), 4 (L2), 6 (L1), 8 (L3). A
    // multi-node loss at panel 9 wipes L1 and L2; only the PFS copy at
    // panel 8 survives.
    let p = RecoveryParams {
        nt: 10,
        crashes: vec![(9, FailureSeverity::MultiNodeLoss)],
        ..RecoveryParams::default()
    };
    let out = run_cholesky_with_recovery(&DeepConfig::small(), 8, &p, SEED);
    assert_eq!(out.restores, vec![Some((CkptLevel::L3Pfs, 8))]);
    assert_eq!(out.factor, fault_free(&p));
}

#[test]
fn repeated_crashes_still_converge_bitwise() {
    // Crash early (before any checkpoint → from scratch), then twice
    // more later — including hitting the same panel again after the
    // first recovery.
    let p = RecoveryParams {
        nt: 8,
        crashes: vec![
            (1, FailureSeverity::MultiNodeLoss),
            (5, FailureSeverity::Transient),
            (5, FailureSeverity::NodeLoss),
        ],
        ..RecoveryParams::default()
    };
    let out = run_cholesky_with_recovery(&DeepConfig::small(), 8, &p, SEED);
    assert_eq!(out.failures, 3);
    assert_eq!(out.restores.len(), 3);
    assert_eq!(out.restores[0], None, "no checkpoint before panel 1");
    assert_eq!(out.factor, fault_free(&p));
}

#[test]
fn crashes_cost_wall_time_but_not_correctness() {
    let clean = RecoveryParams::default();
    let crashed = RecoveryParams {
        crashes: vec![(3, FailureSeverity::Transient)],
        ..RecoveryParams::default()
    };
    let a = run_cholesky_with_recovery(&DeepConfig::small(), 8, &clean, SEED);
    let b = run_cholesky_with_recovery(&DeepConfig::small(), 8, &crashed, SEED);
    assert!(
        b.elapsed > a.elapsed,
        "recovery must cost time: {} vs {}",
        b.elapsed,
        a.elapsed
    );
    assert_eq!(a.factor, b.factor);
}
