//! Property: *no* fault plan may deadlock the machine. Whatever mixture
//! of link degradation, NIC drops, node crashes, BI outages and PFS
//! stalls an adversary schedules, the simulation drains, every submitted
//! job's handle resolves (completed or aborted), and the workload report
//! stays sane.

use std::rc::Rc;

use deep_cbp::CbpWireHandle;
use deep_core::{DeepConfig, DeepMachine};
use deep_faults::{spawn_injector, Domain, FaultEvent, FaultKind, FaultPlan, InjectorTargets};
use deep_io::FailureSeverity;
use deep_psmpi::Wire;
use deep_resmgr::{JobPhase, JobSpec, Policy, ResMgr};
use deep_simkit::{SimDuration, Simulation};
use proptest::prelude::*;

/// Decode one generated tuple into a fault event. The selector picks the
/// kind; node/index fields are deliberately allowed out of range so the
/// injector's skip paths get exercised too.
#[allow(clippy::too_many_arguments)]
fn decode(at_ms: u64, selector: u32, node: u32, frac: f64, dur_ms: u64, sev: u32) -> FaultEvent {
    let domain = if node.is_multiple_of(2) {
        Domain::Cluster
    } else {
        Domain::Booster
    };
    let duration = SimDuration::millis(dur_ms);
    let kind = match selector {
        0 => FaultKind::LinkDegrade {
            domain,
            error_rate: frac * 0.5,
            duration,
        },
        1 => FaultKind::NicDrop {
            domain,
            node,
            drop_prob: frac,
            duration,
        },
        2 => FaultKind::NodeCrash {
            domain,
            node,
            severity: FailureSeverity::ALL[(sev % 3) as usize],
        },
        3 => FaultKind::BiFail {
            index: node as usize,
            duration,
        },
        _ => FaultKind::PfsStall {
            server: node as usize,
            bytes: 1 + (dur_ms << 10),
        },
    };
    FaultEvent {
        at: SimDuration::millis(at_ms),
        kind,
    }
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec(
        (
            0u64..3000,  // at_ms
            0u32..5,     // kind selector
            0u32..16,    // node / index (often out of range on purpose)
            0.0f64..1.0, // rate / probability
            1u64..800,   // duration_ms
            0u32..3,     // severity
        ),
        0..12,
    )
    .prop_map(|events| {
        FaultPlan::new(
            events
                .into_iter()
                .map(|(at, sel, node, frac, dur, sev)| decode(at, sel, node, frac, dur, sev))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_fault_plans_never_deadlock(plan in arb_plan()) {
        let n_events = plan.len();
        let mut sim = Simulation::new(0xFA17);
        let ctx = sim.handle();
        let machine = DeepMachine::build(&ctx, DeepConfig::small());
        let cbp = machine.cbp().clone();
        let rm = ResMgr::with_spares(&ctx, 4, 8, 2, Policy::DynamicFcfs);
        // A small workload competing for nodes while faults land. The
        // checkpoint manager is deliberately absent from the targets:
        // its transfers assume live rank nodes, and crash-driven
        // recovery is covered by the dedicated e2e tests.
        let injector = spawn_injector(
            &ctx,
            plan,
            InjectorTargets {
                extoll: Some(machine.extoll().clone()),
                ib: Some(cbp.ib().clone()),
                cbp: Some(cbp.clone()),
                resmgr: Some(rm.clone()),
                pfs: Some(machine.pfs().clone()),
                ..InjectorTargets::default()
            },
        );
        let jobs: Vec<_> = (0..3u32)
            .map(|j| {
                rm.submit(JobSpec {
                    name: format!("job-{j}"),
                    cn_needed: 1 + j % 2,
                    phases: vec![
                        JobPhase {
                            cn_time: SimDuration::millis(40),
                            bn_needed: 2 + j,
                            bn_time: SimDuration::millis(120),
                        },
                        JobPhase {
                            cn_time: SimDuration::millis(30),
                            bn_needed: 1 + j % 3,
                            bn_time: SimDuration::millis(80),
                        },
                    ],
                })
            })
            .collect();
        let wire = Rc::new(CbpWireHandle(cbp.clone()));
        for i in 0..6u32 {
            let wire = wire.clone();
            let cbp = cbp.clone();
            let ctx2 = ctx.clone();
            sim.spawn(format!("traffic-{i}"), async move {
                ctx2.sleep(SimDuration::millis(100 * u64::from(i))).await;
                let src = cbp.cluster_ep(i % 4);
                let dst = cbp.booster_ep(i % 8);
                let _ = wire.transfer(src, dst, 32 << 10).await;
            });
        }
        // The deadlock check: the run must drain with no process stuck.
        sim.run().assert_completed();
        let records = injector.try_result().expect("injector finishes");
        prop_assert_eq!(records.len(), n_events);
        for job in &jobs {
            prop_assert!(job.try_result().is_some(), "job handle must resolve");
        }
        let report = rm.report();
        prop_assert!((0.0..=1.0).contains(&report.cn_utilization));
        prop_assert!((0.0..=1.0).contains(&report.bn_utilization));
    }
}
