//! Timeout combinator: race a future against a virtual-time deadline.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::sim::{Sim, Sleep};
use crate::time::SimDuration;

/// Future returned by [`Sim::timeout`]: resolves to `Some(v)` if the
/// inner future finishes before the deadline, `None` otherwise.
pub struct Timeout<F> {
    fut: Pin<Box<F>>,
    deadline: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Option<F::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.fut.as_mut().poll(cx) {
            return Poll::Ready(Some(v));
        }
        // The inner future registered its wake-ups; also arm the deadline.
        if Pin::new(&mut self.deadline).poll(cx).is_ready() {
            return Poll::Ready(None);
        }
        Poll::Pending
    }
}

impl Sim {
    /// Race `fut` against a deadline `d` of virtual time.
    ///
    /// If the deadline fires first the inner future is dropped —
    /// half-completed protocol interactions behave exactly as if the
    /// process had abandoned them (queued wake-ups become no-ops).
    pub fn timeout<F: Future>(&self, d: SimDuration, fut: F) -> Timeout<F> {
        Timeout {
            fut: Box::pin(fut),
            deadline: self.sleep(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::sync::OneShot;

    #[test]
    fn completes_before_deadline() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let h = sim.spawn("t", async move {
            let inner = ctx.clone();
            ctx.timeout(SimDuration::millis(1), async move {
                inner.sleep(SimDuration::micros(10)).await;
                42u32
            })
            .await
        });
        sim.run().assert_completed();
        assert_eq!(h.try_result(), Some(Some(42)));
    }

    #[test]
    fn deadline_fires_first() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let h = sim.spawn("t", async move {
            let inner = ctx.clone();
            let r = ctx
                .timeout(SimDuration::micros(10), async move {
                    inner.sleep(SimDuration::millis(1)).await;
                    42u32
                })
                .await;
            (r, ctx.now().as_micros())
        });
        sim.run().assert_completed();
        let (r, t) = h.try_result().unwrap();
        assert_eq!(r, None);
        assert_eq!(t, 10, "gave up exactly at the deadline");
    }

    #[test]
    fn timed_out_wait_does_not_wedge_the_event() {
        // Waiting on a OneShot with a timeout, then the event fires later:
        // the dropped waiter must not break the event for others.
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ev: OneShot<u32> = OneShot::new(&ctx);
        let ev2 = ev.clone();
        let ctx2 = ctx.clone();
        let impatient = sim.spawn("impatient", async move {
            ctx2.timeout(SimDuration::micros(5), ev2.wait()).await
        });
        let ev3 = ev.clone();
        let patient = sim.spawn("patient", async move { ev3.wait().await });
        let ctx3 = ctx.clone();
        sim.spawn("setter", async move {
            ctx3.sleep(SimDuration::micros(100)).await;
            ev.set(7);
        });
        sim.run().assert_completed();
        assert_eq!(impatient.try_result(), Some(None));
        assert_eq!(patient.try_result(), Some(7));
    }
}
