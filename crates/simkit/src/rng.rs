//! Deterministic random-number streams.
//!
//! Every simulated component forks its own stream keyed by a stable
//! identifier, so adding or removing a component never shifts the random
//! sequence observed by the others (a classic source of accidental
//! non-reproducibility in simulators).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG stream (xoshiro-based `SmallRng` under the hood).
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Derive a stream from `(master_seed, stream_id)` via SplitMix64
    /// mixing, so nearby ids yield statistically independent streams.
    pub fn from_seed_stream(seed: u64, stream: u64) -> Self {
        let mixed = splitmix64(splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15) ^ stream);
        SimRng {
            inner: SmallRng::seed_from_u64(mixed),
        }
    }

    /// Uniform value in a range (half-open or inclusive, per `rand`).
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: rand::distributions::uniform::SampleUniform,
        R: rand::distributions::uniform::SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform f64 in [0, 1).
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Exponentially distributed value with the given mean (inverse-CDF).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_same_sequence() {
        let mut a = SimRng::from_seed_stream(1, 2);
        let mut b = SimRng::from_seed_stream(1, 2);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = SimRng::from_seed_stream(1, 2);
        let mut b = SimRng::from_seed_stream(1, 3);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams should be effectively independent");
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut rng = SimRng::from_seed_stream(42, 0);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.gen_exp(5.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean} too far from 5.0");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::from_seed_stream(7, 7);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should virtually never stay sorted");
    }
}
