//! Deterministic random-number streams.
//!
//! Every simulated component forks its own stream keyed by a stable
//! identifier, so adding or removing a component never shifts the random
//! sequence observed by the others (a classic source of accidental
//! non-reproducibility in simulators).
//!
//! The generator is a self-contained xoshiro256++ (the same family the
//! `rand` crate's `SmallRng` uses) seeded through SplitMix64, so the
//! simulator has no external RNG dependency and the exact sequences are
//! pinned by this file alone.

use std::ops::{Range, RangeInclusive};

/// A deterministic RNG stream (xoshiro256++ under the hood).
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Derive a stream from `(master_seed, stream_id)` via SplitMix64
    /// mixing, so nearby ids yield statistically independent streams.
    pub fn from_seed_stream(seed: u64, stream: u64) -> Self {
        let mixed = splitmix64(splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15) ^ stream);
        // Expand the 64-bit seed into xoshiro state with SplitMix64, as
        // the xoshiro authors recommend; the state is never all-zero.
        let mut x = mixed;
        let mut s = [0u64; 4];
        for w in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64(x);
        }
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value in a range (half-open or inclusive).
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform f64 in [0, 1).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed value with the given mean (inverse-CDF).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = self.gen_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Uniform value in `[0, bound)` without modulo bias (Lemire).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let (hi, lo) = mul_wide(x, bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }
}

fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let p = (a as u128) * (b as u128);
    ((p >> 64) as u64, p as u64)
}

/// Ranges that [`SimRng::gen_range`] can sample from (stand-in for
/// `rand`'s `SampleRange`, keeping call sites source-compatible).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_same_sequence() {
        let mut a = SimRng::from_seed_stream(1, 2);
        let mut b = SimRng::from_seed_stream(1, 2);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = SimRng::from_seed_stream(1, 2);
        let mut b = SimRng::from_seed_stream(1, 3);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams should be effectively independent");
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut rng = SimRng::from_seed_stream(42, 0);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.gen_exp(5.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean} too far from 5.0");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::from_seed_stream(7, 7);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should virtually never stay sorted");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SimRng::from_seed_stream(3, 3);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&a));
            let b: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&b));
            let c: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&c));
            let d: usize = rng.gen_range(9..=9);
            assert_eq!(d, 9);
        }
    }
}
