//! Public simulation API: [`Simulation`] owns a run, [`Sim`] is the cheap
//! cloneable handle processes use to talk to the kernel.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::kernel::{Kernel, ProcId, ProcState, RunOutcome};
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, Tracer};

/// A complete simulation run: kernel + metrics + tracer.
///
/// Typical use:
/// ```
/// use deep_simkit::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new(42);
/// let ctx = sim.handle();
/// sim.spawn("hello", async move {
///     ctx.sleep(SimDuration::micros(5)).await;
///     assert_eq!(ctx.now().as_nanos(), 5_000);
/// });
/// sim.run().assert_completed();
/// ```
pub struct Simulation {
    sim: Sim,
}

/// Cheap, cloneable handle to the simulation kernel. All simulated
/// components hold one of these.
#[derive(Clone)]
pub struct Sim {
    pub(crate) kernel: Rc<RefCell<Kernel>>,
    metrics: Rc<RefCell<Metrics>>,
    tracer: Rc<RefCell<Tracer>>,
    seed: u64,
}

impl Simulation {
    /// Create a simulation with the given master seed. Two simulations
    /// built with the same seed and the same program are bit-identical.
    pub fn new(seed: u64) -> Self {
        Simulation {
            sim: Sim {
                kernel: Rc::new(RefCell::new(Kernel::new())),
                metrics: Rc::new(RefCell::new(Metrics::new())),
                tracer: Rc::new(RefCell::new(Tracer::disabled())),
                seed,
            },
        }
    }

    /// Enable the event tracer (records `trace!`-style strings with
    /// timestamps; useful in tests and when debugging protocol issues).
    pub fn enable_tracing(&mut self) {
        self.sim.tracer.borrow_mut().enable();
    }

    /// Get a handle usable inside and outside processes.
    pub fn handle(&self) -> Sim {
        self.sim.clone()
    }

    /// Spawn a root process. See [`Sim::spawn`].
    pub fn spawn<F, T>(&mut self, name: impl Into<String>, fut: F) -> ProcHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        self.sim.spawn(name, fut)
    }

    /// Run until every process finished (or deadlock).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Run until the horizon, completion, or deadlock — whichever first.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            // Drain the ready list at the current instant.
            loop {
                let pid = {
                    let mut k = self.sim.kernel.borrow_mut();
                    match k.ready.pop_front() {
                        Some(p) => {
                            k.procs[p.0 as usize].queued = false;
                            p
                        }
                        None => break,
                    }
                };
                self.poll_proc(pid);
            }

            // Advance to the next timer.
            let (has_timer, at) = {
                let k = self.sim.kernel.borrow();
                match k.next_timer_at() {
                    Some(at) => (true, at),
                    None => (false, SimTime::ZERO),
                }
            };
            if !has_timer {
                let k = self.sim.kernel.borrow();
                return if k.live == 0 {
                    RunOutcome::Completed
                } else {
                    RunOutcome::Deadlock(k.blocked_proc_names(16))
                };
            }
            if at > horizon {
                self.sim.kernel.borrow_mut().now = horizon;
                return RunOutcome::HorizonReached;
            }
            self.sim.kernel.borrow_mut().fire_next_timers();
        }
    }

    fn poll_proc(&mut self, pid: ProcId) {
        // Take the future out of its slot so no kernel borrow is held
        // while polling.
        let mut fut = {
            let mut k = self.sim.kernel.borrow_mut();
            match &mut k.procs[pid.0 as usize].state {
                ProcState::Alive(slot) => match slot.take() {
                    Some(f) => {
                        k.current = Some(pid);
                        f
                    }
                    // Already being polled (impossible) or a stale wake.
                    None => return,
                },
                _ => return, // finished or killed; stale wake
            }
        };
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let done = fut.as_mut().poll(&mut cx).is_ready();
        let mut k = self.sim.kernel.borrow_mut();
        k.current = None;
        if done {
            k.finish_proc(pid);
        } else if let ProcState::Alive(slot) = &mut k.procs[pid.0 as usize].state {
            *slot = Some(fut);
        }
        // If the state changed to Killed while polling (a process cannot
        // kill itself mid-poll in this design), the future is dropped here.
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Access collected metrics after (or during) a run.
    pub fn metrics(&self) -> std::cell::Ref<'_, Metrics> {
        self.sim.metrics.borrow()
    }

    /// Drain the trace log as rendered lines (empty unless tracing was
    /// enabled). Events emitted via [`Sim::trace`] come back as their
    /// payload; typed events from [`Sim::emit`] are rendered as
    /// `[component/kind] payload`.
    pub fn take_trace(&self) -> Vec<(SimTime, String)> {
        self.take_events()
            .into_iter()
            .map(|e| (e.at, e.render()))
            .collect()
    }

    /// Drain the trace log as typed events (empty unless tracing was
    /// enabled). Tests can assert on event ordering and structure
    /// instead of grepping formatted strings.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.sim.tracer.borrow_mut().take()
    }
}

impl Sim {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.kernel.borrow().now
    }

    /// Master seed of this simulation.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent, deterministic RNG stream. Components should
    /// fork one stream each (keyed by a stable identifier) so adding a
    /// component never perturbs another's randomness.
    pub fn fork_rng(&self, stream: u64) -> SimRng {
        SimRng::from_seed_stream(self.seed, stream)
    }

    /// Spawn a process; returns a handle that can be awaited for the result.
    pub fn spawn<F, T>(&self, name: impl Into<String>, fut: F) -> ProcHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let result: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let r2 = result.clone();
        let wrapped = Box::pin(async move {
            let v = fut.await;
            *r2.borrow_mut() = Some(v);
        });
        let id = self.kernel.borrow_mut().add_proc(name.into(), wrapped);
        ProcHandle {
            sim: self.clone(),
            id,
            result,
        }
    }

    /// Sleep for a span of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        Sleep {
            sim: self.clone(),
            until: self.now() + d,
            armed: false,
        }
    }

    /// Sleep until an absolute instant (no-op if already past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            until: at,
            armed: false,
        }
    }

    /// Yield to let other ready processes run at the same instant.
    /// Unlike `sleep(ZERO)` (which completes immediately), this puts the
    /// caller at the back of the ready list exactly once.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow {
            sim: self.clone(),
            yielded: false,
        }
    }

    /// Forcibly terminate a process. Joiners are woken; the handle reports
    /// `None` as its result.
    pub fn kill(&self, id: ProcId) {
        self.kernel.borrow_mut().kill_proc(id);
    }

    /// Record a plain trace line (no-op unless tracing enabled). Recorded
    /// as a [`TraceEvent`] with component `"sim"` and kind `"msg"`.
    pub fn trace(&self, msg: impl FnOnce() -> String) {
        self.emit("sim", "msg", msg);
    }

    /// Record a typed trace event (no-op unless tracing enabled). The
    /// payload closure is only evaluated when tracing is on.
    pub fn emit(&self, component: &str, kind: &str, payload: impl FnOnce() -> String) {
        let mut t = self.tracer.borrow_mut();
        if t.is_enabled() {
            let at = self.now();
            t.record(TraceEvent {
                at,
                component: component.to_string(),
                kind: kind.to_string(),
                payload: payload(),
            });
        }
    }

    /// Mutate the metrics registry.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut Metrics) -> R) -> R {
        f(&mut self.metrics.borrow_mut())
    }

    /// The id of the process currently being polled. Panics outside a poll.
    pub fn current_proc(&self) -> ProcId {
        self.kernel.borrow().current_proc()
    }

    pub(crate) fn make_ready(&self, id: ProcId) {
        self.kernel.borrow_mut().make_ready(id);
    }
}

/// Handle to a spawned process; awaiting it yields `Some(result)` or
/// `None` if the process was killed.
pub struct ProcHandle<T> {
    sim: Sim,
    id: ProcId,
    result: Rc<RefCell<Option<T>>>,
}

impl<T> ProcHandle<T> {
    /// Kernel id of the process.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// True once the process has terminated.
    pub fn is_finished(&self) -> bool {
        self.sim.kernel.borrow().is_finished(self.id)
    }

    /// Take the result without awaiting (None if still running or killed).
    pub fn try_result(&self) -> Option<T> {
        self.result.borrow_mut().take()
    }
}

impl<T> Future for ProcHandle<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut k = self.sim.kernel.borrow_mut();
        if k.is_finished(self.id) {
            drop(k);
            Poll::Ready(self.result.borrow_mut().take())
        } else {
            let me = k.current_proc();
            k.procs[self.id.0 as usize].join_waiters.push(me);
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`].
pub struct Sleep {
    sim: Sim,
    until: SimTime,
    armed: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let mut k = self.sim.kernel.borrow_mut();
        if k.now >= self.until {
            Poll::Ready(())
        } else if self.armed {
            // Spurious wake (e.g. woken by a channel as well) — keep waiting.
            let me = k.current_proc();
            let until = self.until;
            k.schedule_wake(until, me);
            Poll::Pending
        } else {
            let me = k.current_proc();
            let until = self.until;
            k.schedule_wake(until, me);
            drop(k);
            self.armed = true;
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    sim: Sim,
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            return Poll::Ready(());
        }
        self.yielded = true;
        let mut k = self.sim.kernel.borrow_mut();
        let me = k.current_proc();
        // Re-queue ourselves behind everything already runnable.
        k.procs[me.0 as usize].queued = false; // currently being polled
        k.make_ready(me);
        Poll::Pending
    }
}

impl RunOutcome {
    /// Panic unless the run completed normally.
    pub fn assert_completed(&self) {
        match self {
            RunOutcome::Completed => {}
            RunOutcome::HorizonReached => panic!("simulation hit its horizon before completing"),
            RunOutcome::Deadlock(names) => {
                panic!("simulation deadlocked; blocked processes: {names:?}")
            }
        }
    }

    /// True if the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_completes() {
        let mut sim = Simulation::new(1);
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_time() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("sleeper", async move {
            ctx.sleep(SimDuration::micros(10)).await;
            ctx.sleep(SimDuration::micros(5)).await;
            assert_eq!(ctx.now().as_micros(), 15);
        });
        sim.run().assert_completed();
        assert_eq!(sim.now().as_micros(), 15);
    }

    #[test]
    fn processes_interleave_deterministically() {
        let mut sim = Simulation::new(1);
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let ctx = sim.handle();
            let log = log.clone();
            sim.spawn(format!("p{i}"), async move {
                for step in 0..3u64 {
                    ctx.sleep(SimDuration::nanos(10 * (step + 1) + i as u64))
                        .await;
                    log.borrow_mut().push((ctx.now().as_nanos(), i));
                }
            });
        }
        sim.run().assert_completed();
        let got = log.borrow().clone();
        // Times strictly ordered by (time, spawn order at equal times).
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(got, sorted);
        assert_eq!(got.len(), 9);
    }

    #[test]
    fn join_returns_result() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("parent", async move {
            let c2 = ctx.clone();
            let child = ctx.spawn("child", async move {
                c2.sleep(SimDuration::micros(1)).await;
                1234u64
            });
            let v = child.await;
            assert_eq!(v, Some(1234));
            assert_eq!(ctx.now().as_micros(), 1);
        });
        sim.run().assert_completed();
    }

    #[test]
    fn join_already_finished_child() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("parent", async move {
            let child = ctx.spawn("child", async move { 7u32 });
            ctx.sleep(SimDuration::micros(1)).await;
            assert!(child.is_finished());
            assert_eq!(child.await, Some(7));
        });
        sim.run().assert_completed();
    }

    #[test]
    fn kill_wakes_joiner_with_none() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("parent", async move {
            let c2 = ctx.clone();
            let child = ctx.spawn("victim", async move {
                c2.sleep(SimDuration::secs(1000)).await;
                1u8
            });
            ctx.sleep(SimDuration::micros(1)).await;
            ctx.kill(child.id());
            assert_eq!(child.await, None);
            // Killed long before its sleep would have expired.
            assert!(ctx.now().as_secs_f64() < 1.0);
        });
        sim.run().assert_completed();
    }

    #[test]
    fn deadlock_reports_blocked_process() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("waiter", async move {
            // Join a process that never finishes and is never killed.
            let c2 = ctx.clone();
            let stuck = ctx.spawn("stuck", async move {
                // Wait on a process handle that nobody completes: itself via
                // an event that never fires. Simplest: join parent's handle —
                // but we don't have it. Use an empty never-ready future.
                std::future::pending::<()>().await;
                drop(c2);
            });
            stuck.await;
        });
        match sim.run() {
            RunOutcome::Deadlock(names) => {
                assert!(names.iter().any(|n| n == "stuck"));
                assert!(names.iter().any(|n| n == "waiter"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn run_until_horizon_stops_early() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("late", async move {
            ctx.sleep(SimDuration::secs(10)).await;
        });
        let out = sim.run_until(SimTime::ZERO + SimDuration::secs(1));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::secs(1));
    }

    #[test]
    fn identical_seeds_identical_traces() {
        fn trace_of(seed: u64) -> Vec<(SimTime, String)> {
            let mut sim = Simulation::new(seed);
            sim.enable_tracing();
            let ctx = sim.handle();
            sim.spawn("rng-user", async move {
                let mut rng = ctx.fork_rng(7);
                for _ in 0..5 {
                    let d = SimDuration::nanos(rng.gen_range(1..1000));
                    ctx.sleep(d).await;
                    ctx.trace(|| format!("tick at {}", ctx.now()));
                }
            });
            sim.run().assert_completed();
            sim.take_trace()
        }
        assert_eq!(trace_of(99), trace_of(99));
        assert_ne!(trace_of(99), trace_of(100));
    }

    #[test]
    fn typed_events_carry_structure() {
        let mut sim = Simulation::new(3);
        sim.enable_tracing();
        let ctx = sim.handle();
        sim.spawn("emitter", async move {
            ctx.emit("net", "retry", || "link 4".to_string());
            ctx.sleep(SimDuration::nanos(10)).await;
            ctx.trace(|| "plain".to_string());
        });
        sim.run().assert_completed();
        let events = sim.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].component, "net");
        assert_eq!(events[0].kind, "retry");
        assert_eq!(events[0].payload, "link 4");
        assert_eq!(events[0].at, SimTime::ZERO);
        assert_eq!(events[1].component, "sim");
        assert_eq!(events[1].kind, "msg");
        assert_eq!(events[1].render(), "plain");
        assert_eq!(events[1].at.as_nanos(), 10);
    }

    #[test]
    fn events_not_recorded_when_disabled() {
        let mut sim = Simulation::new(3);
        let ctx = sim.handle();
        sim.spawn("emitter", async move {
            ctx.emit("net", "retry", || unreachable!("payload must not be built"));
        });
        sim.run().assert_completed();
        assert!(sim.take_events().is_empty());
    }
}
