//! Public simulation API: [`Simulation`] owns a run, [`Sim`] is the cheap
//! cloneable handle processes use to talk to the kernel.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::kernel::{Kernel, ProcId, RunOutcome};
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceKey, Tracer};

/// A complete simulation run: kernel + metrics + tracer.
///
/// Typical use:
/// ```
/// use deep_simkit::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new(42);
/// let ctx = sim.handle();
/// sim.spawn("hello", async move {
///     ctx.sleep(SimDuration::micros(5)).await;
///     assert_eq!(ctx.now().as_nanos(), 5_000);
/// });
/// sim.run().assert_completed();
/// ```
pub struct Simulation {
    sim: Sim,
}

/// Cheap, cloneable handle to the simulation kernel. All simulated
/// components hold one of these.
#[derive(Clone)]
pub struct Sim {
    pub(crate) kernel: Rc<RefCell<Kernel>>,
    metrics: Rc<RefCell<Metrics>>,
    tracer: Rc<RefCell<Tracer>>,
    seed: u64,
}

impl Simulation {
    /// Create a simulation with the given master seed. Two simulations
    /// built with the same seed and the same program are bit-identical.
    pub fn new(seed: u64) -> Self {
        Simulation {
            sim: Sim {
                kernel: Rc::new(RefCell::new(Kernel::new())),
                metrics: Rc::new(RefCell::new(Metrics::new())),
                tracer: Rc::new(RefCell::new(Tracer::disabled())),
                seed,
            },
        }
    }

    /// Enable the event tracer (records `trace!`-style strings with
    /// timestamps; useful in tests and when debugging protocol issues).
    pub fn enable_tracing(&mut self) {
        self.sim.tracer.borrow_mut().enable();
    }

    /// Get a handle usable inside and outside processes.
    pub fn handle(&self) -> Sim {
        self.sim.clone()
    }

    /// Spawn a root process. See [`Sim::spawn`].
    pub fn spawn<F, T>(&mut self, name: impl Into<String>, fut: F) -> ProcHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        self.sim.spawn(name, fut)
    }

    /// Spawn a root process into an explicit event-loop partition.
    /// See [`Sim::spawn_in`].
    pub fn spawn_in<F, T>(
        &mut self,
        partition: u32,
        name: impl Into<String>,
        fut: F,
    ) -> ProcHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        self.sim.spawn_in(partition, name, fut)
    }

    /// Total process polls performed so far — the kernel's event
    /// counter. One poll is one scheduled event (a wake, a message
    /// delivery, a timer firing); scaling benchmarks divide this by wall
    /// time for an events/s figure.
    pub fn events_processed(&self) -> u64 {
        self.sim.kernel.borrow().events
    }

    /// Number of event-loop partitions currently backing the simulation
    /// (1 unless [`Sim::spawn_in`] was used).
    pub fn partitions(&self) -> usize {
        self.sim.kernel.borrow().partitions()
    }

    /// Run until every process finished (or deadlock).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Run until the horizon, completion, or deadlock — whichever first.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        loop {
            // Drain the ready list at the current instant. Each poll costs
            // exactly two kernel borrows: take the future out, put it back.
            loop {
                let Some((pid, mut fut)) = self.sim.kernel.borrow_mut().take_ready() else {
                    break;
                };
                if fut.as_mut().poll(&mut cx).is_ready() {
                    self.sim.kernel.borrow_mut().finish_proc(pid);
                    // `fut` dropped here, outside the kernel borrow.
                } else {
                    self.sim.kernel.borrow_mut().finish_poll(pid, fut);
                }
            }

            // Advance to the next timer.
            let mut k = self.sim.kernel.borrow_mut();
            match k.next_timer_at() {
                None => {
                    return if k.live == 0 {
                        RunOutcome::Completed
                    } else {
                        RunOutcome::Deadlock(k.blocked_proc_names(16))
                    };
                }
                Some(at) if at > horizon => {
                    k.now = horizon;
                    return RunOutcome::HorizonReached;
                }
                Some(at) => k.fire_timers_at(at),
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Access collected metrics after (or during) a run.
    pub fn metrics(&self) -> std::cell::Ref<'_, Metrics> {
        self.sim.metrics.borrow()
    }

    /// Drain the trace log as rendered lines (empty unless tracing was
    /// enabled). Events emitted via [`Sim::trace`] come back as their
    /// payload; typed events from [`Sim::emit`] are rendered as
    /// `[component/kind] payload`.
    pub fn take_trace(&self) -> Vec<(SimTime, String)> {
        self.take_events()
            .into_iter()
            .map(|e| (e.at, e.render()))
            .collect()
    }

    /// Drain the trace log as typed events (empty unless tracing was
    /// enabled). Component/kind names are stored interned during the run
    /// and resolved to strings here, at export.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.sim.tracer.borrow_mut().take()
    }
}

impl Sim {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.kernel.borrow().now
    }

    /// Master seed of this simulation.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent, deterministic RNG stream. Components should
    /// fork one stream each (keyed by a stable identifier) so adding a
    /// component never perturbs another's randomness.
    pub fn fork_rng(&self, stream: u64) -> SimRng {
        SimRng::from_seed_stream(self.seed, stream)
    }

    /// Spawn a process; returns a handle that can be awaited for the result.
    pub fn spawn<F, T>(&self, name: impl Into<String>, fut: F) -> ProcHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let (wrapped, result) = wrap_proc(fut);
        let id = self.kernel.borrow_mut().add_proc(name.into(), wrapped);
        ProcHandle {
            sim: self.clone(),
            id,
            result,
        }
    }

    /// Spawn a process into an explicit event-loop partition. Far-horizon
    /// timers armed by the process (and by any children it spawns — the
    /// partition is inherited) live in that partition's private heap, so
    /// independent simulated segments advance without sifting through a
    /// shared queue. Partitioning never changes observable behavior: the
    /// kernel merges due timers back into exact global `(at, seq)` order,
    /// so a run is bit-identical for every partition assignment — it is a
    /// layout choice, like an allocator, not a scheduling policy.
    ///
    /// Partition ids are dense; spawning into partition `p` materializes
    /// partitions `0..=p` (an empty partition is three words).
    pub fn spawn_in<F, T>(&self, partition: u32, name: impl Into<String>, fut: F) -> ProcHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let (wrapped, result) = wrap_proc(fut);
        let id = self
            .kernel
            .borrow_mut()
            .add_proc_in(partition, name.into(), wrapped);
        ProcHandle {
            sim: self.clone(),
            id,
            result,
        }
    }

    /// [`Sim::spawn_in`] with a pool-recycled formatted name (see
    /// [`Sim::spawn_fmt`]). Use in spawn-heavy partitioned loops.
    pub fn spawn_in_fmt<F, T>(
        &self,
        partition: u32,
        name: std::fmt::Arguments<'_>,
        fut: F,
    ) -> ProcHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let (wrapped, result) = wrap_proc(fut);
        let id = self
            .kernel
            .borrow_mut()
            .add_proc_fmt_in(partition, name, wrapped);
        ProcHandle {
            sim: self.clone(),
            id,
            result,
        }
    }

    /// Spawn with a name formatted straight into recycled kernel storage:
    /// `sim.spawn_fmt(format_args!("rank-{r}"), fut)` builds no fresh
    /// `String` once the name pool is warm. Use in spawn-heavy loops.
    pub fn spawn_fmt<F, T>(&self, name: std::fmt::Arguments<'_>, fut: F) -> ProcHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let (wrapped, result) = wrap_proc(fut);
        let id = self.kernel.borrow_mut().add_proc_fmt(name, wrapped);
        ProcHandle {
            sim: self.clone(),
            id,
            result,
        }
    }

    /// Sleep for a span of virtual time.
    #[inline]
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        Sleep {
            kernel: self.kernel.clone(),
            until: self.now() + d,
            token: None,
        }
    }

    /// Sleep until an absolute instant (no-op if already past).
    #[inline]
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            kernel: self.kernel.clone(),
            until: at,
            token: None,
        }
    }

    /// Yield to let other ready processes run at the same instant.
    /// Unlike `sleep(ZERO)` (which completes immediately), this puts the
    /// caller at the back of the ready list exactly once.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow {
            kernel: self.kernel.clone(),
            yielded: false,
        }
    }

    /// Forcibly terminate a process. Joiners are woken; the handle reports
    /// `None` as its result.
    pub fn kill(&self, id: ProcId) {
        let fut = self.kernel.borrow_mut().kill_proc(id);
        // Drop outside the borrow: the future's destructors may re-enter
        // the kernel (e.g. a pending `Sleep` cancels its timer).
        drop(fut);
    }

    /// Record a plain trace line (no-op unless tracing enabled). Recorded
    /// as a [`TraceEvent`] with component `"sim"` and kind `"msg"`.
    pub fn trace(&self, msg: impl FnOnce() -> String) {
        self.emit("sim", "msg", msg);
    }

    /// Record a typed trace event (no-op unless tracing enabled). The
    /// payload closure is only evaluated when tracing is on. Component and
    /// kind are interned — recording allocates only the payload. Hot
    /// loops should pre-intern with [`Sim::trace_key`] and use
    /// [`Sim::emit_key`] to skip the name lookups entirely.
    pub fn emit(&self, component: &str, kind: &str, payload: impl FnOnce() -> String) {
        let mut t = self.tracer.borrow_mut();
        if t.is_enabled() {
            let at = self.now();
            t.record_named(at, component, kind, payload());
        }
    }

    /// Pre-intern a `(component, kind)` pair for allocation- and
    /// lookup-free emission via [`Sim::emit_key`]. Keys are cheap `Copy`
    /// ids, stable for the lifetime of the run, and valid whether or not
    /// tracing is currently enabled.
    pub fn trace_key(&self, component: &str, kind: &str) -> TraceKey {
        self.tracer.borrow_mut().intern_key(component, kind)
    }

    /// Record a typed trace event through a pre-interned [`TraceKey`]
    /// (no-op unless tracing enabled). The payload closure is only
    /// evaluated when tracing is on.
    #[inline]
    pub fn emit_key(&self, key: TraceKey, payload: impl FnOnce() -> String) {
        let mut t = self.tracer.borrow_mut();
        if t.is_enabled() {
            let at = self.now();
            t.record_key(at, key, payload());
        }
    }

    /// Mutate the metrics registry.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut Metrics) -> R) -> R {
        f(&mut self.metrics.borrow_mut())
    }

    /// The id of the process currently being polled. Panics outside a poll.
    pub fn current_proc(&self) -> ProcId {
        self.kernel.borrow().current_proc()
    }

    #[inline]
    pub(crate) fn make_ready(&self, id: ProcId) {
        self.kernel.borrow_mut().make_ready(id);
    }
}

/// Box a user future, capturing its output into a shared result cell.
fn wrap_proc<F, T>(fut: F) -> (crate::kernel::BoxedProc, Rc<RefCell<Option<T>>>)
where
    F: Future<Output = T> + 'static,
    T: 'static,
{
    let result: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
    let r2 = result.clone();
    let wrapped = Box::pin(async move {
        let v = fut.await;
        *r2.borrow_mut() = Some(v);
    });
    (wrapped, result)
}

/// Handle to a spawned process; awaiting it yields `Some(result)` or
/// `None` if the process was killed.
pub struct ProcHandle<T> {
    sim: Sim,
    id: ProcId,
    result: Rc<RefCell<Option<T>>>,
}

impl<T> ProcHandle<T> {
    /// Kernel id of the process.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// True once the process has terminated.
    pub fn is_finished(&self) -> bool {
        self.sim.kernel.borrow().is_finished(self.id)
    }

    /// Take the result without awaiting (None if still running or killed).
    pub fn try_result(&self) -> Option<T> {
        self.result.borrow_mut().take()
    }
}

impl<T> Future for ProcHandle<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut k = self.sim.kernel.borrow_mut();
        if k.is_finished(self.id) {
            drop(k);
            Poll::Ready(self.result.borrow_mut().take())
        } else {
            let me = k.current_proc();
            k.add_join_waiter(self.id, me);
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`].
///
/// Holds only the kernel handle (one `Rc`, not a whole [`Sim`] clone) and
/// arms exactly one timer. A spurious wake (e.g. by a channel during a
/// race) does **not** re-push a duplicate timer — the original entry is
/// still pending. Dropping an armed `Sleep` before its deadline lazily
/// cancels the timer, so lost races and timeouts leave no dead heap
/// entries behind.
pub struct Sleep {
    kernel: Rc<RefCell<Kernel>>,
    until: SimTime,
    /// Token of the armed timer; `None` before arming and after firing.
    token: Option<u64>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let mut k = this.kernel.borrow_mut();
        if k.now >= this.until {
            // The timer (if armed) fired to get us here; nothing to cancel.
            this.token = None;
            return Poll::Ready(());
        }
        if this.token.is_none() {
            let me = k.current_proc();
            this.token = Some(k.schedule_wake(this.until, me));
        }
        // Armed and not yet due: the original timer is still pending, so a
        // spurious wake needs no re-arm.
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(token) = self.token {
            let mut k = self.kernel.borrow_mut();
            // Before the deadline the timer cannot have fired yet (time
            // only advances through pending timers); after it, it has.
            if k.now < self.until {
                k.cancel_wake(token);
            }
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    kernel: Rc<RefCell<Kernel>>,
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            return Poll::Ready(());
        }
        self.yielded = true;
        let mut k = self.kernel.borrow_mut();
        let me = k.current_proc();
        // Re-queue ourselves behind everything already runnable.
        k.procs[me.0 as usize].queued = false; // currently being polled
        k.make_ready(me);
        Poll::Pending
    }
}

impl RunOutcome {
    /// Panic unless the run completed normally.
    pub fn assert_completed(&self) {
        match self {
            RunOutcome::Completed => {}
            RunOutcome::HorizonReached => panic!("simulation hit its horizon before completing"),
            RunOutcome::Deadlock(names) => {
                panic!("simulation deadlocked; blocked processes: {names:?}")
            }
        }
    }

    /// True if the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_completes() {
        let mut sim = Simulation::new(1);
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_time() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("sleeper", async move {
            ctx.sleep(SimDuration::micros(10)).await;
            ctx.sleep(SimDuration::micros(5)).await;
            assert_eq!(ctx.now().as_micros(), 15);
        });
        sim.run().assert_completed();
        assert_eq!(sim.now().as_micros(), 15);
    }

    #[test]
    fn processes_interleave_deterministically() {
        let mut sim = Simulation::new(1);
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let ctx = sim.handle();
            let log = log.clone();
            sim.spawn(format!("p{i}"), async move {
                for step in 0..3u64 {
                    ctx.sleep(SimDuration::nanos(10 * (step + 1) + i as u64))
                        .await;
                    log.borrow_mut().push((ctx.now().as_nanos(), i));
                }
            });
        }
        sim.run().assert_completed();
        let got = log.borrow().clone();
        // Times strictly ordered by (time, spawn order at equal times).
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(got, sorted);
        assert_eq!(got.len(), 9);
    }

    #[test]
    fn join_returns_result() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("parent", async move {
            let c2 = ctx.clone();
            let child = ctx.spawn("child", async move {
                c2.sleep(SimDuration::micros(1)).await;
                1234u64
            });
            let v = child.await;
            assert_eq!(v, Some(1234));
            assert_eq!(ctx.now().as_micros(), 1);
        });
        sim.run().assert_completed();
    }

    #[test]
    fn join_already_finished_child() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("parent", async move {
            let child = ctx.spawn("child", async move { 7u32 });
            ctx.sleep(SimDuration::micros(1)).await;
            assert!(child.is_finished());
            assert_eq!(child.await, Some(7));
        });
        sim.run().assert_completed();
    }

    #[test]
    fn spawn_fmt_reuses_name_storage() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("driver", async move {
            for i in 0..100u32 {
                let c = ctx.clone();
                let h = ctx.spawn_fmt(format_args!("worker-{i}"), async move {
                    c.sleep(SimDuration::nanos(1)).await;
                    i
                });
                assert_eq!(h.await, Some(i));
            }
        });
        sim.run().assert_completed();
    }

    #[test]
    fn kill_wakes_joiner_with_none() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("parent", async move {
            let c2 = ctx.clone();
            let child = ctx.spawn("victim", async move {
                c2.sleep(SimDuration::secs(1000)).await;
                1u8
            });
            ctx.sleep(SimDuration::micros(1)).await;
            ctx.kill(child.id());
            assert_eq!(child.await, None);
            // Killed long before its sleep would have expired.
            assert!(ctx.now().as_secs_f64() < 1.0);
        });
        sim.run().assert_completed();
    }

    #[test]
    fn deadlock_reports_blocked_process() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("waiter", async move {
            // Join a process that never finishes and is never killed.
            let c2 = ctx.clone();
            let stuck = ctx.spawn("stuck", async move {
                // Wait on a process handle that nobody completes: itself via
                // an event that never fires. Simplest: join parent's handle —
                // but we don't have it. Use an empty never-ready future.
                std::future::pending::<()>().await;
                drop(c2);
            });
            stuck.await;
        });
        match sim.run() {
            RunOutcome::Deadlock(names) => {
                assert!(names.iter().any(|n| n == "stuck"));
                assert!(names.iter().any(|n| n == "waiter"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn run_until_horizon_stops_early() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("late", async move {
            ctx.sleep(SimDuration::secs(10)).await;
        });
        let out = sim.run_until(SimTime::ZERO + SimDuration::secs(1));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::secs(1));
    }

    #[test]
    fn identical_seeds_identical_traces() {
        fn trace_of(seed: u64) -> Vec<(SimTime, String)> {
            let mut sim = Simulation::new(seed);
            sim.enable_tracing();
            let ctx = sim.handle();
            sim.spawn("rng-user", async move {
                let mut rng = ctx.fork_rng(7);
                for _ in 0..5 {
                    let d = SimDuration::nanos(rng.gen_range(1..1000));
                    ctx.sleep(d).await;
                    ctx.trace(|| format!("tick at {}", ctx.now()));
                }
            });
            sim.run().assert_completed();
            sim.take_trace()
        }
        assert_eq!(trace_of(99), trace_of(99));
        assert_ne!(trace_of(99), trace_of(100));
    }

    #[test]
    fn typed_events_carry_structure() {
        let mut sim = Simulation::new(3);
        sim.enable_tracing();
        let ctx = sim.handle();
        sim.spawn("emitter", async move {
            ctx.emit("net", "retry", || "link 4".to_string());
            ctx.sleep(SimDuration::nanos(10)).await;
            ctx.trace(|| "plain".to_string());
        });
        sim.run().assert_completed();
        let events = sim.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].component, "net");
        assert_eq!(events[0].kind, "retry");
        assert_eq!(events[0].payload, "link 4");
        assert_eq!(events[0].at, SimTime::ZERO);
        assert_eq!(events[1].component, "sim");
        assert_eq!(events[1].kind, "msg");
        assert_eq!(events[1].render(), "plain");
        assert_eq!(events[1].at.as_nanos(), 10);
    }

    #[test]
    fn events_not_recorded_when_disabled() {
        let mut sim = Simulation::new(3);
        let ctx = sim.handle();
        sim.spawn("emitter", async move {
            ctx.emit("net", "retry", || unreachable!("payload must not be built"));
        });
        sim.run().assert_completed();
        assert!(sim.take_events().is_empty());
    }

    #[test]
    fn emit_key_round_trips_through_interner() {
        let mut sim = Simulation::new(3);
        sim.enable_tracing();
        let ctx = sim.handle();
        let key = ctx.trace_key("net", "retry");
        // Interning is idempotent: same names, same key, whole run long.
        assert_eq!(ctx.trace_key("net", "retry"), key);
        sim.spawn("emitter", async move {
            ctx.emit_key(key, || "via key".to_string());
            ctx.emit("net", "retry", || "via names".to_string());
            assert_eq!(ctx.trace_key("net", "retry"), key);
        });
        sim.run().assert_completed();
        let events = sim.take_events();
        assert_eq!(events.len(), 2);
        for e in &events {
            assert_eq!(e.component, "net");
            assert_eq!(e.kind, "retry");
        }
        assert_eq!(events[0].payload, "via key");
        assert_eq!(events[1].payload, "via names");
    }

    #[test]
    fn partitions_do_not_change_event_order() {
        // The same program spawned across k partitions must produce the
        // identical trace for every k: partitioning is a queue layout,
        // not a scheduling policy. Mixed horizons force both the wheel
        // (short sleeps) and the partition heaps (long sleeps) into play,
        // including several partitions firing at one instant.
        fn run(parts: u32) -> Vec<(SimTime, String)> {
            let mut sim = Simulation::new(7);
            sim.enable_tracing();
            for i in 0..9u32 {
                let ctx = sim.handle();
                sim.spawn_in(i % parts, format!("p{i}"), async move {
                    for step in 0..4u64 {
                        // Some deadlines collide exactly (same at, several
                        // partitions), some are wheel-range, some heap-range.
                        let d = if step % 2 == 0 {
                            SimDuration::nanos(500 * (step + 1))
                        } else {
                            SimDuration::micros(10 * (step + i as u64 % 3))
                        };
                        ctx.sleep(d).await;
                        ctx.trace(|| format!("p{i} step {step}"));
                        let c = ctx.clone();
                        // Children inherit the partition.
                        ctx.spawn_fmt(format_args!("c{i}-{step}"), async move {
                            c.sleep(SimDuration::micros(2)).await;
                        });
                    }
                });
            }
            sim.run().assert_completed();
            sim.take_trace()
        }
        let base = run(1);
        for parts in [2, 3, 4, 9, 16] {
            assert_eq!(run(parts), base, "trace diverged at {parts} partitions");
        }
    }

    #[test]
    fn events_processed_counts_polls() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        sim.spawn("ticker", async move {
            for _ in 0..10 {
                ctx.sleep(SimDuration::nanos(5)).await;
            }
        });
        sim.run().assert_completed();
        // One initial poll plus one per timer wake, at minimum.
        assert!(sim.events_processed() >= 11);
        assert_eq!(sim.partitions(), 1);
    }

    #[test]
    fn dropped_sleep_cancels_its_timer() {
        // A lost race leaves no timer behind: the loser's deadline must
        // not hold the clock back or wake anyone.
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let h = sim.spawn("racer", async move {
            let c1 = ctx.clone();
            let c2 = ctx.clone();
            let r = ctx
                .race(
                    async move {
                        c1.sleep(SimDuration::micros(1)).await;
                        "fast"
                    },
                    async move {
                        c2.sleep(SimDuration::secs(3600)).await;
                        "slow"
                    },
                )
                .await;
            (r.left(), ctx.now().as_micros())
        });
        sim.run().assert_completed();
        // The run completed at 1us — the abandoned 1-hour timer was
        // discarded rather than fired.
        assert_eq!(h.try_result(), Some((Some("fast"), 1)));
        assert_eq!(sim.now().as_micros(), 1);
    }
}
