//! In-simulation message channels.
//!
//! These deliver values between simulated processes in **zero virtual
//! time** — they are a programming primitive, not a network model. Network
//! crates layer transport delays on top by sleeping before `send`.
//!
//! Two flavours:
//! * [`channel`] — unbounded MPSC-ish queue (any number of senders and
//!   receivers is allowed; receivers compete for items, FIFO).
//! * [`bounded`] — capacity-limited; `send` suspends while full, which is
//!   what NIC injection queues and credit-based protocols are built from.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::kernel::ProcId;
use crate::sim::Sim;

struct ChanState<T> {
    queue: VecDeque<T>,
    capacity: usize, // usize::MAX for unbounded
    recv_waiters: VecDeque<ProcId>,
    send_waiters: VecDeque<ProcId>,
    senders: usize,
    receivers: usize,
}

/// Sending half of a channel. Cloneable.
pub struct Sender<T> {
    sim: Sim,
    state: Rc<RefCell<ChanState<T>>>,
}

/// Receiving half of a channel. Cloneable.
pub struct Receiver<T> {
    sim: Sim,
    state: Rc<RefCell<ChanState<T>>>,
}

/// Error returned when sending on a channel with no live receivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

/// Error returned when receiving on an empty channel with no live senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Create an unbounded channel.
pub fn channel<T>(sim: &Sim) -> (Sender<T>, Receiver<T>) {
    bounded(sim, usize::MAX)
}

/// Create a channel holding at most `capacity` queued items.
pub fn bounded<T>(sim: &Sim, capacity: usize) -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        capacity,
        recv_waiters: VecDeque::new(),
        send_waiters: VecDeque::new(),
        senders: 1,
        receivers: 1,
    }));
    (
        Sender {
            sim: sim.clone(),
            state: state.clone(),
        },
        Receiver {
            sim: sim.clone(),
            state,
        },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            sim: self.sim.clone(),
            state: self.state.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.senders -= 1;
        if st.senders == 0 {
            // Wake all receivers so they can observe disconnection.
            // `make_ready` only borrows the kernel, never the channel
            // state, so waking under the state borrow is safe and
            // allocation-free.
            while let Some(w) = st.recv_waiters.pop_front() {
                self.sim.make_ready(w);
            }
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().receivers += 1;
        Receiver {
            sim: self.sim.clone(),
            state: self.state.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.receivers -= 1;
        if st.receivers == 0 {
            while let Some(w) = st.send_waiters.pop_front() {
                self.sim.make_ready(w);
            }
        }
    }
}

impl<T> Sender<T> {
    /// Queue a value without waiting. Fails if the channel is at capacity
    /// or all receivers are gone.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        let mut st = self.state.borrow_mut();
        if st.receivers == 0 || st.queue.len() >= st.capacity {
            return Err(value);
        }
        st.queue.push_back(value);
        if let Some(w) = st.recv_waiters.pop_front() {
            self.sim.make_ready(w);
        }
        Ok(())
    }

    /// Send, suspending while the channel is full.
    pub fn send(&self, value: T) -> SendFut<'_, T> {
        SendFut {
            chan: self,
            value: Some(value),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Take a queued value without waiting.
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.state.borrow_mut();
        let v = st.queue.pop_front();
        if v.is_some() {
            if let Some(w) = st.send_waiters.pop_front() {
                self.sim.make_ready(w);
            }
        }
        v
    }

    /// Receive, suspending while the channel is empty. Resolves to
    /// `Err(RecvError)` once the channel is empty *and* all senders dropped.
    pub fn recv(&self) -> RecvFut<'_, T> {
        RecvFut { chan: self }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Sender::send`].
pub struct SendFut<'a, T> {
    chan: &'a Sender<T>,
    value: Option<T>,
}

// The payload is owned by value and never pinned-projected, so moving the
// future is always sound regardless of `T`.
impl<T> Unpin for SendFut<'_, T> {}

impl<T> Future for SendFut<'_, T> {
    type Output = Result<(), SendError>;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY-free pinning: we never move out of a pinned field that
        // needs pinning; T is owned in an Option.
        let this = &mut *self;
        let mut st = this.chan.state.borrow_mut();
        if st.receivers == 0 {
            return Poll::Ready(Err(SendError));
        }
        if st.queue.len() < st.capacity {
            st.queue
                .push_back(this.value.take().expect("SendFut polled after ready"));
            if let Some(w) = st.recv_waiters.pop_front() {
                this.chan.sim.make_ready(w);
            }
            Poll::Ready(Ok(()))
        } else {
            let me = this.chan.sim.current_proc();
            if !st.send_waiters.contains(&me) {
                st.send_waiters.push_back(me);
            }
            Poll::Pending
        }
    }
}

/// Future returned by [`Receiver::recv`].
pub struct RecvFut<'a, T> {
    chan: &'a Receiver<T>,
}

impl<T> Future for RecvFut<'_, T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.chan.state.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            if let Some(w) = st.send_waiters.pop_front() {
                self.chan.sim.make_ready(w);
            }
            return Poll::Ready(Ok(v));
        }
        if st.senders == 0 {
            return Poll::Ready(Err(RecvError));
        }
        let me = self.chan.sim.current_proc();
        if !st.recv_waiters.contains(&me) {
            st.recv_waiters.push_back(me);
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::time::SimDuration;

    #[test]
    fn unbounded_send_recv_fifo() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let (tx, rx) = channel::<u32>(&ctx);
        let c = ctx.clone();
        sim.spawn("producer", async move {
            for i in 0..10 {
                tx.send(i).await.unwrap();
                c.sleep(SimDuration::nanos(5)).await;
            }
        });
        let got = sim.spawn("consumer", async move {
            let mut v = Vec::new();
            while let Ok(x) = rx.recv().await {
                v.push(x);
            }
            v
        });
        sim.run().assert_completed();
        assert_eq!(got.try_result().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_backpressure_blocks_sender() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let (tx, rx) = bounded::<u32>(&ctx, 2);
        let c = ctx.clone();
        sim.spawn("producer", async move {
            for i in 0..4 {
                tx.send(i).await.unwrap();
            }
            // Queue cap 2 and consumer drains one item per microsecond
            // starting at t=10us, so the last send completes at ~12us.
            assert!(c.now().as_micros() >= 10);
        });
        let c2 = ctx.clone();
        sim.spawn("consumer", async move {
            c2.sleep(SimDuration::micros(10)).await;
            for expect in 0..4 {
                let v = rx.recv().await.unwrap();
                assert_eq!(v, expect);
                c2.sleep(SimDuration::micros(1)).await;
            }
        });
        sim.run().assert_completed();
    }

    #[test]
    fn recv_on_disconnected_errors() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let (tx, rx) = channel::<u8>(&ctx);
        sim.spawn("producer", async move {
            tx.send(1).await.unwrap();
            // tx dropped here
        });
        sim.spawn("consumer", async move {
            assert_eq!(rx.recv().await, Ok(1));
            assert_eq!(rx.recv().await, Err(RecvError));
        });
        sim.run().assert_completed();
    }

    #[test]
    fn send_on_disconnected_errors() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let (tx, rx) = bounded::<u8>(&ctx, 1);
        let c = ctx.clone();
        sim.spawn("producer", async move {
            tx.send(1).await.unwrap();
            // Receiver will drop without draining; second send must fail.
            c.sleep(SimDuration::micros(2)).await;
            assert_eq!(tx.send(2).await, Err(SendError));
        });
        let c2 = ctx.clone();
        sim.spawn("consumer", async move {
            c2.sleep(SimDuration::micros(1)).await;
            drop(rx);
        });
        sim.run().assert_completed();
    }

    #[test]
    fn try_send_respects_capacity() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let (tx, rx) = bounded::<u8>(&ctx, 1);
        sim.spawn("p", async move {
            assert!(tx.try_send(1).is_ok());
            assert_eq!(tx.try_send(2), Err(2));
            assert_eq!(rx.try_recv(), Some(1));
            assert_eq!(rx.try_recv(), None);
        });
        sim.run().assert_completed();
    }

    #[test]
    fn multiple_receivers_compete() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let (tx, rx) = channel::<u32>(&ctx);
        let rx2 = rx.clone();
        let a = sim.spawn("rx-a", async move { rx.recv().await.unwrap() });
        let b = sim.spawn("rx-b", async move { rx2.recv().await.unwrap() });
        sim.spawn("tx", async move {
            tx.send(1).await.unwrap();
            tx.send(2).await.unwrap();
        });
        sim.run().assert_completed();
        let mut got = vec![a.try_result().unwrap(), b.try_result().unwrap()];
        got.sort();
        assert_eq!(got, vec![1, 2]);
    }
}
