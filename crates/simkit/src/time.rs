//! Virtual time for the simulation kernel.
//!
//! Simulated time is measured in integer **nanoseconds** since the start of
//! the simulation. Using an integer representation keeps event ordering
//! exact and the simulation bit-reproducible: there is no floating-point
//! drift, and two events scheduled at the same instant are ordered by a
//! monotone sequence number in the kernel.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a floating-point value (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this span as a floating-point value (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction of two spans.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_nanos(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn fmt_nanos(ns: u64) -> String {
    if ns >= 10_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 10_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::micros(3);
        assert_eq!(t.as_nanos(), 3_000);
        let t2 = t + SimDuration::nanos(500);
        assert_eq!((t2 - t).as_nanos(), 500);
        assert_eq!(t2.since(t).as_nanos(), 500);
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_consistent() {
        assert_eq!(SimDuration::secs(1), SimDuration::millis(1_000));
        assert_eq!(SimDuration::millis(1), SimDuration::micros(1_000));
        assert_eq!(SimDuration::micros(1), SimDuration::nanos(1_000));
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration::millis(1_500));
    }

    #[test]
    fn from_secs_f64_boundaries() {
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        // Rounds to the nearest nanosecond rather than truncating.
        assert_eq!(SimDuration::from_secs_f64(1.5e-9), SimDuration::nanos(2));
        assert_eq!(SimDuration::from_secs_f64(0.4e-9), SimDuration::ZERO);
        // Negative zero is still zero, not a validation failure.
        assert_eq!(SimDuration::from_secs_f64(-0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_nan() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0e-9);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_infinity() {
        let _ = SimDuration::from_secs_f64(f64::INFINITY);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::micros(2) * 3, SimDuration::micros(6));
        assert_eq!(SimDuration::micros(6) / 3, SimDuration::micros(2));
        let total: SimDuration = (1..=4).map(SimDuration::nanos).sum();
        assert_eq!(total, SimDuration::nanos(10));
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn time_underflow_panics() {
        let _ = SimTime::ZERO - SimTime(1);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::nanos(42)), "42ns");
        assert_eq!(format!("{}", SimDuration::micros(42)), "42.000us");
        assert_eq!(format!("{}", SimDuration::millis(42)), "42.000ms");
        assert_eq!(format!("{}", SimDuration::secs(42)), "42.000s");
    }
}
