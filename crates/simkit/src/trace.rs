//! Typed event tracing for simulated protocols.
//!
//! Disabled by default; when disabled, [`crate::Sim::emit`] and
//! [`crate::Sim::trace`] do not even build their payload strings (they
//! take closures). When enabled, every event carries its virtual
//! timestamp, the emitting component, an event kind, and a payload, so
//! tests can assert on event *ordering and structure* rather than
//! grepping formatted strings.

use crate::time::SimTime;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event was emitted at.
    pub at: SimTime,
    /// The emitting component (e.g. `"net"`, `"cbp"`, `"resmgr"`).
    pub component: String,
    /// Event kind within the component (e.g. `"retry"`, `"node-down"`).
    pub kind: String,
    /// Free-form payload describing the event.
    pub payload: String,
}

impl TraceEvent {
    /// Render the event as a single human-readable line.
    pub fn render(&self) -> String {
        if self.component == "sim" && self.kind == "msg" {
            self.payload.clone()
        } else {
            format!("[{}/{}] {}", self.component, self.kind, self.payload)
        }
    }
}

pub(crate) struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    pub(crate) fn disabled() -> Self {
        Tracer {
            enabled: false,
            events: Vec::new(),
        }
    }

    pub(crate) fn enable(&mut self) {
        self.enabled = true;
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}
