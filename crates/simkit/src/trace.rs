//! Typed event tracing for simulated protocols.
//!
//! Disabled by default; when disabled, [`crate::Sim::emit`] and
//! [`crate::Sim::trace`] do not even build their payload strings (they
//! take closures). When enabled, every event carries its virtual
//! timestamp, the emitting component, an event kind, and a payload, so
//! tests can assert on event *ordering and structure* rather than
//! grepping formatted strings.
//!
//! ## Interning
//!
//! Component and kind names repeat massively (a retry storm emits the
//! same `("net", "drop")` pair thousands of times), so the tracer stores
//! them as `u16` ids into a per-run string table and materialises
//! [`TraceEvent`]s — with owned `String` names — only at export in
//! [`Tracer::take`]. Recording an event therefore allocates nothing
//! beyond the payload the caller already built. Hot call sites can go
//! one step further and pre-intern a [`TraceKey`] to skip even the name
//! hash lookups.

use std::collections::HashMap;

use crate::time::SimTime;

/// One recorded trace event, as handed out at export time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event was emitted at.
    pub at: SimTime,
    /// The emitting component (e.g. `"net"`, `"cbp"`, `"resmgr"`).
    pub component: String,
    /// Event kind within the component (e.g. `"retry"`, `"node-down"`).
    pub kind: String,
    /// Free-form payload describing the event.
    pub payload: String,
}

impl TraceEvent {
    /// Render the event as a single human-readable line.
    pub fn render(&self) -> String {
        if self.component == "sim" && self.kind == "msg" {
            self.payload.clone()
        } else {
            format!("[{}/{}] {}", self.component, self.kind, self.payload)
        }
    }
}

/// Pre-interned `(component, kind)` pair. Obtained from
/// [`crate::Sim::trace_key`]; valid for the whole run, including across
/// [`Tracer::take`] drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    comp: u16,
    kind: u16,
}

/// Internal event representation: ids instead of owned name strings.
struct RawEvent {
    at: SimTime,
    key: TraceKey,
    payload: String,
}

pub(crate) struct Tracer {
    enabled: bool,
    events: Vec<RawEvent>,
    /// Interned name table; `TraceKey` ids index into this.
    names: Vec<String>,
    ids: HashMap<String, u16>,
}

impl Tracer {
    pub(crate) fn disabled() -> Self {
        Tracer {
            enabled: false,
            events: Vec::new(),
            names: Vec::new(),
            ids: HashMap::new(),
        }
    }

    pub(crate) fn enable(&mut self) {
        self.enabled = true;
    }

    #[inline]
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn intern(&mut self, name: &str) -> u16 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = u16::try_from(self.names.len()).expect("trace name table overflow (>65535)");
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Intern a `(component, kind)` pair into a reusable key.
    pub(crate) fn intern_key(&mut self, component: &str, kind: &str) -> TraceKey {
        TraceKey {
            comp: self.intern(component),
            kind: self.intern(kind),
        }
    }

    /// Record an event, interning its names on the fly.
    pub(crate) fn record_named(
        &mut self,
        at: SimTime,
        component: &str,
        kind: &str,
        payload: String,
    ) {
        let key = self.intern_key(component, kind);
        self.events.push(RawEvent { at, key, payload });
    }

    /// Record an event through a pre-interned key (no hashing at all).
    #[inline]
    pub(crate) fn record_key(&mut self, at: SimTime, key: TraceKey, payload: String) {
        debug_assert!(
            (key.comp as usize) < self.names.len() && (key.kind as usize) < self.names.len(),
            "TraceKey from a different run"
        );
        self.events.push(RawEvent { at, key, payload });
    }

    /// Drain recorded events, resolving interned ids back to names. The
    /// interner itself is kept, so previously handed-out [`TraceKey`]s
    /// stay valid for subsequent recording.
    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
            .into_iter()
            .map(|e| TraceEvent {
                at: e.at,
                component: self.names[e.key.comp as usize].clone(),
                kind: self.names[e.key.kind as usize].clone(),
                payload: e.payload,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_total() {
        let mut t = Tracer::disabled();
        t.enable();
        let k1 = t.intern_key("net", "drop");
        let k2 = t.intern_key("net", "retry");
        let k3 = t.intern_key("cbp", "drop");
        // Re-interning yields the same ids.
        assert_eq!(t.intern_key("net", "drop"), k1);
        assert_eq!(t.intern_key("cbp", "drop"), k3);
        // Shared names share ids across positions.
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);

        t.record_key(SimTime::ZERO, k1, "a".into());
        t.record_key(SimTime::ZERO, k2, "b".into());
        t.record_key(SimTime::ZERO, k3, "c".into());
        let events = t.take();
        let names: Vec<(&str, &str)> = events
            .iter()
            .map(|e| (e.component.as_str(), e.kind.as_str()))
            .collect();
        assert_eq!(names, [("net", "drop"), ("net", "retry"), ("cbp", "drop")]);
    }

    #[test]
    fn keys_survive_take() {
        let mut t = Tracer::disabled();
        t.enable();
        let k = t.intern_key("io", "flush");
        t.record_key(SimTime::ZERO, k, "first".into());
        assert_eq!(t.take().len(), 1);
        // The drain kept the interner: the old key still resolves.
        t.record_key(SimTime::ZERO, k, "second".into());
        let events = t.take();
        assert_eq!(events[0].component, "io");
        assert_eq!(events[0].kind, "flush");
        assert_eq!(events[0].payload, "second");
        // And re-interning after a drain is still idempotent.
        assert_eq!(t.intern_key("io", "flush"), k);
    }
}
