//! Optional event tracing for debugging simulated protocols.
//!
//! Disabled by default; when disabled, [`crate::Sim::trace`] does not even
//! build its message string (it takes a closure).

use crate::time::SimTime;

pub(crate) struct Tracer {
    enabled: bool,
    events: Vec<(SimTime, String)>,
}

impl Tracer {
    pub(crate) fn disabled() -> Self {
        Tracer {
            enabled: false,
            events: Vec::new(),
        }
    }

    pub(crate) fn enable(&mut self) {
        self.enabled = true;
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, t: SimTime, msg: String) {
        self.events.push((t, msg));
    }

    pub(crate) fn take(&mut self) -> Vec<(SimTime, String)> {
        std::mem::take(&mut self.events)
    }
}
