//! Race combinator: run two futures until either completes.
//!
//! The loser is dropped, exactly as in [`crate::Timeout`]: any wake-ups it
//! queued become no-ops. The first future has deterministic priority —
//! if both are ready at the same instant, `Left` wins.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::sim::Sim;

/// Which side of a [`Race`] finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future completed (it also wins ties).
    Left(A),
    /// The second future completed.
    Right(B),
}

impl<A, B> Either<A, B> {
    /// The left value, if this is `Left`.
    pub fn left(self) -> Option<A> {
        match self {
            Either::Left(a) => Some(a),
            Either::Right(_) => None,
        }
    }

    /// The right value, if this is `Right`.
    pub fn right(self) -> Option<B> {
        match self {
            Either::Left(_) => None,
            Either::Right(b) => Some(b),
        }
    }

    /// True if this is `Left`.
    pub fn is_left(&self) -> bool {
        matches!(self, Either::Left(_))
    }
}

/// Future returned by [`Sim::race`].
pub struct Race<A, B> {
    a: Pin<Box<A>>,
    b: Pin<Box<B>>,
}

impl<A: Future, B: Future> Future for Race<A, B> {
    type Output = Either<A::Output, B::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = self.b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

impl Sim {
    /// Race two futures; the first to complete wins and the other is
    /// dropped. `a` is polled first, so it wins same-instant ties —
    /// callers should put the authoritative side (e.g. an interrupt
    /// signal) on the left when ties must resolve deterministically.
    pub fn race<A: Future, B: Future>(&self, a: A, b: B) -> Race<A, B> {
        Race {
            a: Box::pin(a),
            b: Box::pin(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::sync::OneShot;
    use crate::time::SimDuration;

    #[test]
    fn faster_side_wins() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let h = sim.spawn("t", async move {
            let c1 = ctx.clone();
            let c2 = ctx.clone();
            let r = ctx
                .race(
                    async move {
                        c1.sleep(SimDuration::micros(50)).await;
                        "slow"
                    },
                    async move {
                        c2.sleep(SimDuration::micros(5)).await;
                        "fast"
                    },
                )
                .await;
            (r, ctx.now().as_micros())
        });
        sim.run().assert_completed();
        let (r, t) = h.try_result().unwrap();
        assert_eq!(r, Either::Right("fast"));
        assert_eq!(t, 5);
    }

    #[test]
    fn left_wins_ties() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let h = sim.spawn("t", async move {
            let c1 = ctx.clone();
            let c2 = ctx.clone();
            ctx.race(
                async move {
                    c1.sleep(SimDuration::micros(5)).await;
                    1u8
                },
                async move {
                    c2.sleep(SimDuration::micros(5)).await;
                    2u8
                },
            )
            .await
        });
        sim.run().assert_completed();
        assert_eq!(h.try_result(), Some(Either::Left(1)));
    }

    #[test]
    fn losing_waiter_does_not_wedge_the_event() {
        // Race a OneShot wait against a sleep; when the sleep wins, the
        // dropped waiter must not break the event for later setters.
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ev: OneShot<u32> = OneShot::new(&ctx);
        let ev2 = ev.clone();
        let ctx2 = ctx.clone();
        let racer = sim.spawn("racer", async move {
            let c = ctx2.clone();
            ctx2.race(ev2.wait(), async move {
                c.sleep(SimDuration::micros(5)).await;
            })
            .await
            .is_left()
        });
        let ctx3 = ctx.clone();
        sim.spawn("setter", async move {
            ctx3.sleep(SimDuration::micros(100)).await;
            ev.set(7);
        });
        sim.run().assert_completed();
        assert_eq!(racer.try_result(), Some(false));
    }
}
