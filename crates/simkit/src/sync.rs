//! Synchronization primitives for simulated processes: counting semaphore
//! (with RAII guards), one-shot events, and barriers.
//!
//! All of these operate in zero virtual time; they sequence processes
//! within an instant and are the building blocks for modelling contended
//! resources (links, cores, DMA engines).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::kernel::ProcId;
use crate::sim::Sim;

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemState {
    permits: u64,
    /// FIFO of (proc, permits wanted).
    waiters: VecDeque<(ProcId, u64)>,
}

/// A counting semaphore with FIFO wake-up order.
///
/// FIFO matters: it makes contended-resource simulations fair and, more
/// importantly, deterministic.
#[derive(Clone)]
pub struct Semaphore {
    sim: Sim,
    state: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Create a semaphore with an initial number of permits.
    pub fn new(sim: &Sim, permits: u64) -> Self {
        Semaphore {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.state.borrow().permits
    }

    /// Acquire `n` permits, suspending until available. Returns a guard
    /// that releases them on drop.
    pub async fn acquire_many(&self, n: u64) -> SemGuard {
        AcquireFut {
            sem: self,
            n,
            me: None,
            granted: false,
        }
        .await;
        SemGuard {
            sem: self.clone(),
            n,
            released: false,
        }
    }

    /// Acquire one permit.
    pub async fn acquire(&self) -> SemGuard {
        self.acquire_many(1).await
    }

    /// Return `n` permits and wake eligible waiters in FIFO order.
    pub fn release_many(&self, n: u64) {
        let mut st = self.state.borrow_mut();
        st.permits += n;
        // Strict FIFO: stop at the first waiter that still cannot be
        // satisfied, even if later (smaller) requests could be. This
        // prevents starvation of large requests. Waking under the state
        // borrow is safe (`make_ready` only touches the kernel) and
        // avoids collecting the woken set into a Vec.
        while let Some(&(pid, want)) = st.waiters.front() {
            if st.permits >= want {
                st.permits -= want;
                st.waiters.pop_front();
                self.sim.make_ready(pid);
            } else {
                break;
            }
        }
    }
}

/// RAII guard returned by [`Semaphore::acquire`].
pub struct SemGuard {
    sem: Semaphore,
    n: u64,
    released: bool,
}

impl SemGuard {
    /// Release early (drop also releases).
    pub fn release(mut self) {
        self.do_release();
    }

    fn do_release(&mut self) {
        if !self.released {
            self.released = true;
            self.sem.release_many(self.n);
        }
    }
}

impl Drop for SemGuard {
    fn drop(&mut self) {
        self.do_release();
    }
}

struct AcquireFut<'a> {
    sem: &'a Semaphore,
    n: u64,
    /// Our ProcId once enqueued; needed to clean up on drop.
    me: Option<ProcId>,
    granted: bool,
}

impl Future for AcquireFut<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let mut st = this.sem.state.borrow_mut();
        if let Some(me) = this.me {
            // We are woken only after release_many already granted our
            // permits and removed us from the queue.
            if st.waiters.iter().any(|&(p, _)| p == me) {
                return Poll::Pending; // spurious wake while still queued
            }
            this.granted = true;
            return Poll::Ready(());
        }
        if st.waiters.is_empty() && st.permits >= this.n {
            st.permits -= this.n;
            this.granted = true;
            Poll::Ready(())
        } else {
            let me = this.sem.sim.current_proc();
            st.waiters.push_back((me, this.n));
            this.me = Some(me);
            Poll::Pending
        }
    }
}

impl Drop for AcquireFut<'_> {
    /// An abandoned acquire (timed out, lost a race) must not wedge the
    /// semaphore: if still queued, withdraw the request; if the permits
    /// were already granted but the guard was never constructed, return
    /// them.
    fn drop(&mut self) {
        if self.granted {
            // `acquire_many` builds the guard synchronously after the
            // await, so a granted-and-dropped future means the caller was
            // dropped at the await point — the guard does not exist.
            // But Ready was observed by the caller, which then constructs
            // the guard; nothing to do in that case. Distinguish: once
            // Ready is returned the future is dropped *after* the guard
            // exists, so releasing here would double-free. The `granted`
            // flag therefore means "hand-off complete": do nothing.
            return;
        }
        if let Some(me) = self.me {
            let mut st = self.sem.state.borrow_mut();
            if let Some(pos) = st.waiters.iter().position(|&(p, _)| p == me) {
                // Still queued: withdraw. Waiters behind us may now be
                // eligible (we might have been the blocking head).
                st.waiters.remove(pos);
                drop(st);
                self.sem.release_many(0);
            } else {
                // Granted while we were no longer being polled: the
                // permits were deducted for us; give them back.
                drop(st);
                self.sem.release_many(self.n);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// OneShot event
// ---------------------------------------------------------------------------

struct OneShotState<T> {
    value: Option<T>,
    fired: bool,
    waiters: Vec<ProcId>,
}

/// A one-shot event carrying a value. Multiple processes may wait; the
/// value is cloned to each. Setting twice panics.
pub struct OneShot<T: Clone> {
    sim: Sim,
    state: Rc<RefCell<OneShotState<T>>>,
}

impl<T: Clone> Clone for OneShot<T> {
    fn clone(&self) -> Self {
        OneShot {
            sim: self.sim.clone(),
            state: self.state.clone(),
        }
    }
}

impl<T: Clone> OneShot<T> {
    /// Create an unfired event.
    pub fn new(sim: &Sim) -> Self {
        OneShot {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(OneShotState {
                value: None,
                fired: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Fire the event, waking all waiters.
    pub fn set(&self, value: T) {
        let mut st = self.state.borrow_mut();
        assert!(!st.fired, "OneShot::set called twice");
        st.fired = true;
        st.value = Some(value);
        // Drain in place: keeps the waiter Vec's capacity for reuse and
        // allocates nothing.
        for w in st.waiters.drain(..) {
            self.sim.make_ready(w);
        }
    }

    /// True once fired.
    pub fn is_set(&self) -> bool {
        self.state.borrow().fired
    }

    /// Wait for the event; resolves immediately if already fired.
    pub fn wait(&self) -> OneShotWait<'_, T> {
        OneShotWait { event: self }
    }
}

/// Future returned by [`OneShot::wait`].
pub struct OneShotWait<'a, T: Clone> {
    event: &'a OneShot<T>,
}

impl<T: Clone> Future for OneShotWait<'_, T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.event.state.borrow_mut();
        if st.fired {
            Poll::Ready(st.value.clone().expect("fired OneShot holds a value"))
        } else {
            let me = self.event.sim.current_proc();
            if !st.waiters.contains(&me) {
                st.waiters.push(me);
            }
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<ProcId>,
}

/// A reusable barrier for a fixed number of parties.
#[derive(Clone)]
pub struct Barrier {
    sim: Sim,
    state: Rc<RefCell<BarrierState>>,
}

impl Barrier {
    /// Create a barrier for `parties` processes.
    pub fn new(sim: &Sim, parties: usize) -> Self {
        assert!(parties > 0);
        Barrier {
            sim: sim.clone(),
            state: Rc::new(RefCell::new(BarrierState {
                parties,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Arrive and wait for all parties. The last arriver releases everyone.
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            barrier: self.clone(),
            gen: None,
        }
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    barrier: Barrier,
    gen: Option<u64>,
}

impl Future for BarrierWait {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let mut st = this.barrier.state.borrow_mut();
        match this.gen {
            None => {
                st.arrived += 1;
                if st.arrived == st.parties {
                    st.arrived = 0;
                    st.generation += 1;
                    for w in st.waiters.drain(..) {
                        this.barrier.sim.make_ready(w);
                    }
                    Poll::Ready(())
                } else {
                    this.gen = Some(st.generation);
                    let me = this.barrier.sim.current_proc();
                    st.waiters.push(me);
                    Poll::Pending
                }
            }
            Some(g) => {
                if st.generation > g {
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::time::SimDuration;

    #[test]
    fn semaphore_serializes_access() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let sem = Semaphore::new(&ctx, 1);
        type EventLog = Rc<RefCell<Vec<(u64, usize, &'static str)>>>;
        let log: EventLog = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let ctx = ctx.clone();
            let sem = sem.clone();
            let log = log.clone();
            sim.spawn(format!("user{i}"), async move {
                let g = sem.acquire().await;
                log.borrow_mut().push((ctx.now().as_nanos(), i, "in"));
                ctx.sleep(SimDuration::micros(1)).await;
                log.borrow_mut().push((ctx.now().as_nanos(), i, "out"));
                drop(g);
            });
        }
        sim.run().assert_completed();
        let l = log.borrow();
        // Non-overlapping critical sections, FIFO order 0,1,2.
        assert_eq!(
            *l,
            vec![
                (0, 0, "in"),
                (1_000, 0, "out"),
                (1_000, 1, "in"),
                (2_000, 1, "out"),
                (2_000, 2, "in"),
                (3_000, 2, "out"),
            ]
        );
    }

    #[test]
    fn semaphore_fifo_prevents_large_request_starvation() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let sem = Semaphore::new(&ctx, 2);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        // holder takes both permits for 1us.
        {
            let (sem, ctx, order) = (sem.clone(), ctx.clone(), order.clone());
            sim.spawn("holder", async move {
                let g = sem.acquire_many(2).await;
                order.borrow_mut().push("holder");
                ctx.sleep(SimDuration::micros(1)).await;
                drop(g);
            });
        }
        // big wants 2 permits, queued first.
        {
            let (sem, ctx, order) = (sem.clone(), ctx.clone(), order.clone());
            sim.spawn("big", async move {
                ctx.sleep(SimDuration::nanos(10)).await;
                let _g = sem.acquire_many(2).await;
                order.borrow_mut().push("big");
            });
        }
        // small wants 1, queued second; must NOT overtake big.
        {
            let (sem, ctx, order) = (sem.clone(), ctx.clone(), order.clone());
            sim.spawn("small", async move {
                ctx.sleep(SimDuration::nanos(20)).await;
                let _g = sem.acquire().await;
                order.borrow_mut().push("small");
            });
        }
        sim.run().assert_completed();
        assert_eq!(*order.borrow(), vec!["holder", "big", "small"]);
    }

    #[test]
    fn oneshot_delivers_to_all_waiters() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ev: OneShot<u32> = OneShot::new(&ctx);
        let mut handles = Vec::new();
        for i in 0..4 {
            let ev = ev.clone();
            handles.push(sim.spawn(format!("w{i}"), async move { ev.wait().await }));
        }
        let ctx2 = ctx.clone();
        sim.spawn("setter", async move {
            ctx2.sleep(SimDuration::micros(3)).await;
            ev.set(77);
        });
        sim.run().assert_completed();
        for h in handles {
            assert_eq!(h.try_result(), Some(77));
        }
    }

    #[test]
    fn oneshot_wait_after_set_is_immediate() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ev: OneShot<u8> = OneShot::new(&ctx);
        ev.set(5);
        let h = sim.spawn("late", async move { ev.wait().await });
        sim.run().assert_completed();
        assert_eq!(h.try_result(), Some(5));
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let bar = Barrier::new(&ctx, 3);
        let mut handles = Vec::new();
        for i in 0..3u64 {
            let bar = bar.clone();
            let ctx = ctx.clone();
            handles.push(sim.spawn(format!("p{i}"), async move {
                ctx.sleep(SimDuration::micros(i + 1)).await;
                bar.wait().await;
                ctx.now().as_micros()
            }));
        }
        sim.run().assert_completed();
        for h in handles {
            // Everyone leaves at the last arrival time (3us).
            assert_eq!(h.try_result(), Some(3));
        }
    }

    #[test]
    fn barrier_is_reusable() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let bar = Barrier::new(&ctx, 2);
        for i in 0..2u64 {
            let bar = bar.clone();
            let ctx = ctx.clone();
            sim.spawn(format!("p{i}"), async move {
                for round in 0..5u64 {
                    ctx.sleep(SimDuration::micros(i * (round + 1) + 1)).await;
                    bar.wait().await;
                }
            });
        }
        sim.run().assert_completed();
    }

    #[test]
    fn abandoned_acquire_does_not_wedge_the_semaphore() {
        // A waiter that times out while queued must withdraw its request
        // so later (or queued-behind) waiters still make progress, and
        // permits granted to an abandoned waiter must flow back.
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let sem = Semaphore::new(&ctx, 4);
        let s1 = sem.clone();
        let c1 = ctx.clone();
        sim.spawn("holder", async move {
            let g = s1.acquire_many(4).await;
            c1.sleep(SimDuration::micros(100)).await;
            drop(g);
        });
        let s2 = sem.clone();
        let c2 = ctx.clone();
        let impatient = sim.spawn("impatient", async move {
            c2.sleep(SimDuration::micros(1)).await;
            // Queued behind the holder, gives up at t = 11us.
            c2.timeout(SimDuration::micros(10), s2.acquire_many(4))
                .await
        });
        let s3 = sem.clone();
        let c3 = ctx.clone();
        let patient = sim.spawn("patient", async move {
            c3.sleep(SimDuration::micros(2)).await;
            let _g = s3.acquire_many(4).await;
            c3.now().as_micros()
        });
        sim.run().assert_completed();
        assert!(impatient.try_result().unwrap().is_none(), "timed out");
        // The patient waiter gets the permits as soon as the holder
        // releases them; the abandoned request in front of it is skipped.
        assert_eq!(patient.try_result(), Some(100));
        assert_eq!(sem.available(), 4, "no permits leaked");
    }
}
