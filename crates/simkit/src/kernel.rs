//! The simulation kernel: event queue, process table and ready list.
//!
//! The kernel is deliberately separated from the public [`crate::Sim`]
//! handle so that all mutation happens behind a single `RefCell`. The
//! executor never holds a kernel borrow while polling a process, which is
//! what allows process bodies to freely call back into the kernel (to
//! spawn, sleep, or touch channels) without re-entrancy panics.
//!
//! ## Hot-path layout
//!
//! The process table is split into a *hot* slab (`procs`: the future slot
//! plus run-state flags, 24 bytes per process) and *cold* side tables
//! (`names`, `join_waiters`) touched only at spawn, join and exit. The
//! event loop touches one hot slot per event, so a simulation with
//! thousands of processes keeps its working set in L1 instead of dragging
//! 80-byte slots (with inline `String`s) through the cache.
//!
//! Timers use lazy deletion: a cancelled sleep (future dropped before its
//! deadline) marks its token dead and the heap entry is discarded when it
//! surfaces, so timeout- and race-heavy workloads no longer accumulate
//! dead entries that must be popped, re-heapified and filtered at the
//! worst possible moment.
//!
//! ## Partitioned far-horizon queue
//!
//! The overflow heap is *partitioned*: every process belongs to a
//! partition (inherited from its spawner, or chosen explicitly via
//! `Sim::spawn_in`), and its far-horizon timers live in that partition's
//! own `BinaryHeap`. A fabric-scale simulation assigns one partition per
//! fabric segment (leaf switch / module), so 10⁴–10⁵ concurrent compute
//! sleeps push into thousands of tiny heaps (O(1) when a heap holds one
//! entry) instead of contending on one shared heap with log₂(n) sift
//! depth. Firing merges partitions back into the exact global `(at, seq)`
//! order — see [`Kernel::fire_timers_at`] — so partitioning is invisible
//! in traces: a run with any partition assignment is bit-identical to the
//! same program on a single queue. The default is one partition; nothing
//! changes for existing simulations.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;

use crate::time::SimTime;

/// Identifier of a simulated process. Dense, never reused within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A future pinned on the heap, as stored in the process table.
pub(crate) type BoxedProc = Pin<Box<dyn Future<Output = ()>>>;

/// Lifecycle of a process slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcStatus {
    /// Runnable or blocked.
    Alive,
    /// Ran to completion.
    Done,
    /// Killed before completion (fault injection, job abort).
    Killed,
}

/// Hot per-process state: exactly what the event loop touches per poll.
pub(crate) struct ProcSlot {
    /// The future lives here except while being polled.
    pub(crate) fut: Option<BoxedProc>,
    pub(crate) status: ProcStatus,
    /// Set while the process is in the ready list to avoid duplicate polls.
    pub(crate) queued: bool,
}

/// A far-horizon timer entry in the overflow heap. Ordered by `(at, seq)`
/// so that simultaneous events fire in the order they were scheduled —
/// this is the cornerstone of reproducibility.
#[derive(Clone, Copy)]
struct Timer {
    at: SimTime,
    /// Schedule order at equal `at`; unique per timer, so it doubles as
    /// the cancellation token: a sleep whose future is dropped registers
    /// its `seq` in `Kernel::cancelled` and the entry is discarded when
    /// it surfaces. One field, 24-byte entries.
    seq: u64,
    proc: ProcId,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Horizon of the short-timer wheel, in slots of one nanosecond each.
/// Must be a power of two. LogGP gaps, per-hop latencies and back-off
/// waits are all under a microsecond, so the overwhelming majority of
/// timers land here; anything further out takes the heap path.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// Index-based timer wheel for deadlines within [`WHEEL_SLOTS`] ns of now.
///
/// Insertion and removal are O(1): slot `at % WHEEL_SLOTS` holds every
/// pending timer due at instant `at` (the mapping is injective because
/// the kernel never advances time past a pending timer, so live deadlines
/// always span less than one wheel turn). Within a slot, entries are
/// naturally seq-sorted — `seq` grows monotonically with scheduling
/// order, and slots only ever append. An occupancy bitmap makes "next
/// non-empty slot" a couple of `trailing_zeros` calls rather than a scan.
///
/// Slot `Vec`s keep their capacity across turns, so the steady-state
/// wheel performs no allocation at all.
struct TimerWheel {
    slots: Vec<Vec<(u64, ProcId)>>,
    occupied: [u64; WHEEL_WORDS],
    len: usize,
}

impl TimerWheel {
    fn new() -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            len: 0,
        }
    }

    #[inline(always)]
    fn slot_of(at: SimTime) -> usize {
        at.as_nanos() as usize & (WHEEL_SLOTS - 1)
    }

    #[inline]
    fn push(&mut self, at: SimTime, seq: u64, proc: ProcId) {
        let s = Self::slot_of(at);
        self.slots[s].push((seq, proc));
        self.occupied[s / 64] |= 1 << (s % 64);
        self.len += 1;
    }

    /// Absolute time of the earliest pending wheel timer, given `now`.
    /// All live entries are due within [now, now + WHEEL_SLOTS), so the
    /// circular slot distance from `now`'s slot *is* the time distance.
    fn next_at(&self, now: SimTime) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let cursor = Self::slot_of(now);
        let mut dist = None;
        let (w0, b0) = (cursor / 64, cursor % 64);
        let first = self.occupied[w0] >> b0;
        if first != 0 {
            dist = Some(first.trailing_zeros() as usize);
        } else {
            for step in 1..=WHEEL_WORDS {
                let w = (w0 + step) % WHEEL_WORDS;
                let word = if w == w0 {
                    // Wrapped all the way: only bits before the cursor.
                    self.occupied[w0] & ((1u64 << b0) - 1)
                } else {
                    self.occupied[w]
                };
                if word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    dist = Some((w * 64 + bit + WHEEL_SLOTS - cursor) % WHEEL_SLOTS);
                    break;
                }
            }
        }
        dist.map(|d| SimTime(now.as_nanos() + d as u64))
    }

    /// Drop cancelled entries from the slot due at `at`; returns true if
    /// the slot still has live entries. Only called on the rare path
    /// where the cancelled set is non-empty.
    fn purge(&mut self, at: SimTime, cancelled: &mut HashSet<u64>) -> bool {
        let s = Self::slot_of(at);
        let slot = &mut self.slots[s];
        let before = slot.len();
        slot.retain(|&(seq, _)| !cancelled.remove(&seq));
        self.len -= before - slot.len();
        if slot.is_empty() {
            self.occupied[s / 64] &= !(1 << (s % 64));
            false
        } else {
            true
        }
    }
}

/// Why [`crate::Simulation::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All processes finished and the event queue drained.
    Completed,
    /// The time horizon passed to `run_until` was reached.
    HorizonReached,
    /// Live processes remain but none can ever make progress.
    /// Contains the names of the blocked processes (up to a small cap).
    Deadlock(Vec<String>),
}

pub(crate) struct Kernel {
    pub(crate) now: SimTime,
    seq: u64,
    /// O(1) queue for deadlines within the wheel horizon (the hot path).
    /// Shared across partitions: wheel ops are O(1) regardless of
    /// occupancy, and one wheel costs ~24 KiB — per-partition wheels
    /// would waste megabytes at fabric scale for no algorithmic gain.
    wheel: TimerWheel,
    /// Partitioned overflow heaps for far-horizon deadlines; a timer
    /// lives in the heap of its owner process's partition. Index 0
    /// always exists (the default partition).
    parts: Vec<BinaryHeap<Timer>>,
    /// Total entries across all partition heaps (including lazily
    /// cancelled ones); lets `next_timer_at` skip the partition scan
    /// entirely when every pending timer is on the wheel.
    heap_len: usize,
    /// Partition of each process, parallel to `procs`.
    part_of: Vec<u32>,
    /// Scratch buffer for draining due timers while waking their owners;
    /// capacity is recycled so firing allocates nothing in steady state.
    fire_scratch: Vec<(u64, ProcId)>,
    /// Tokens of cancelled (not yet surfaced) timers. Almost always empty;
    /// the `is_empty` fast path keeps the per-event cost at one branch.
    cancelled: HashSet<u64>,
    pub(crate) ready: VecDeque<ProcId>,
    /// Hot process slab: one 24-byte slot per process.
    pub(crate) procs: Vec<ProcSlot>,
    /// Cold: process names, only read at spawn/deadlock/diagnostics time.
    names: Vec<String>,
    /// Cold: processes waiting on each slot's completion.
    join_waiters: Vec<Vec<ProcId>>,
    /// Recycled name storage for `add_proc_fmt` (slab reuse: finished
    /// processes donate their `String` allocation to future spawns).
    name_pool: Vec<String>,
    /// Currently polled process; valid only during a poll.
    pub(crate) current: Option<ProcId>,
    /// Number of slots still `Alive`.
    pub(crate) live: usize,
    /// Total process polls performed — the kernel's event counter, used
    /// for events/s reporting by the scaling benchmarks.
    pub(crate) events: u64,
}

impl Kernel {
    pub(crate) fn new() -> Self {
        Kernel {
            now: SimTime::ZERO,
            seq: 0,
            wheel: TimerWheel::new(),
            parts: vec![BinaryHeap::with_capacity(256)],
            heap_len: 0,
            part_of: Vec::with_capacity(256),
            fire_scratch: Vec::new(),
            cancelled: HashSet::new(),
            ready: VecDeque::with_capacity(256),
            procs: Vec::with_capacity(256),
            names: Vec::with_capacity(256),
            join_waiters: Vec::with_capacity(256),
            name_pool: Vec::new(),
            current: None,
            live: 0,
            events: 0,
        }
    }

    /// Register a new process; it becomes runnable immediately. The
    /// process inherits the partition of its spawner (partition 0 when
    /// spawned from outside the event loop).
    pub(crate) fn add_proc(&mut self, name: String, fut: BoxedProc) -> ProcId {
        let part = self.current.map_or(0, |p| self.part_of[p.0 as usize]);
        self.add_proc_in(part, name, fut)
    }

    /// Register a new process in an explicit partition, growing the
    /// partition table as needed (empty heaps cost one pointer-triple).
    pub(crate) fn add_proc_in(&mut self, part: u32, name: String, fut: BoxedProc) -> ProcId {
        if part as usize >= self.parts.len() {
            self.parts.resize_with(part as usize + 1, BinaryHeap::new);
        }
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(ProcSlot {
            fut: Some(fut),
            status: ProcStatus::Alive,
            queued: true,
        });
        self.part_of.push(part);
        self.names.push(name);
        self.join_waiters.push(Vec::new());
        self.live += 1;
        self.ready.push_back(id);
        id
    }

    /// Like [`Kernel::add_proc`], but formats the name into a recycled
    /// `String` from the name pool, so spawn-heavy loops do not allocate
    /// a fresh name per process.
    pub(crate) fn add_proc_fmt(&mut self, name: fmt::Arguments<'_>, fut: BoxedProc) -> ProcId {
        use fmt::Write as _;
        let mut s = self.name_pool.pop().unwrap_or_default();
        s.clear();
        let _ = s.write_fmt(name);
        self.add_proc(s, fut)
    }

    /// Like [`Kernel::add_proc_in`], with a pool-recycled formatted name.
    pub(crate) fn add_proc_fmt_in(
        &mut self,
        part: u32,
        name: fmt::Arguments<'_>,
        fut: BoxedProc,
    ) -> ProcId {
        use fmt::Write as _;
        let mut s = self.name_pool.pop().unwrap_or_default();
        s.clear();
        let _ = s.write_fmt(name);
        self.add_proc_in(part, s, fut)
    }

    /// Number of partitions currently backing the far-horizon queue.
    #[inline]
    pub(crate) fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The process being polled right now. Panics outside a poll: kernel
    /// futures may only be awaited from inside simulation processes.
    #[inline]
    pub(crate) fn current_proc(&self) -> ProcId {
        self.current
            .expect("simkit future polled outside a simulation process")
    }

    /// Mark a process runnable (idempotent while already queued).
    #[inline]
    pub(crate) fn make_ready(&mut self, id: ProcId) {
        let slot = &mut self.procs[id.0 as usize];
        if slot.status == ProcStatus::Alive && !slot.queued {
            slot.queued = true;
            self.ready.push_back(id);
        }
    }

    /// Pop the next runnable process and take its future for polling.
    /// Sets `current`; the caller must hand the future back through
    /// [`Kernel::finish_poll`]. One kernel borrow instead of three.
    #[inline]
    pub(crate) fn take_ready(&mut self) -> Option<(ProcId, BoxedProc)> {
        while let Some(pid) = self.ready.pop_front() {
            let slot = &mut self.procs[pid.0 as usize];
            slot.queued = false;
            if slot.status != ProcStatus::Alive {
                continue; // stale wake of a finished/killed process
            }
            if let Some(fut) = slot.fut.take() {
                self.current = Some(pid);
                self.events += 1;
                return Some((pid, fut));
            }
        }
        None
    }

    /// Store the future back after a pending poll (single kernel borrow).
    /// Completed futures are instead reported via [`Kernel::finish_proc`];
    /// the caller drops them *outside* the kernel borrow, because dropping
    /// a future can re-enter the kernel (e.g. `Sleep` cancels its timer).
    #[inline]
    pub(crate) fn finish_poll(&mut self, pid: ProcId, fut: BoxedProc) {
        self.current = None;
        let slot = &mut self.procs[pid.0 as usize];
        if slot.status == ProcStatus::Alive {
            slot.fut = Some(fut);
        }
        // If the process was killed while polling (cannot kill itself
        // mid-poll in this design) the caller drops the future.
    }

    /// Schedule a wake-up for `proc` at absolute time `at`.
    /// Returns the token (the timer's unique `seq`) guarding this timer.
    ///
    /// Near deadlines go to the shared wheel; far deadlines go to the
    /// heap of `proc`'s partition, so independent fabric segments never
    /// sift through each other's timers.
    #[inline]
    pub(crate) fn schedule_wake(&mut self, at: SimTime, proc: ProcId) -> u64 {
        debug_assert!(at >= self.now, "cannot schedule in the past");
        self.seq += 1;
        if at.as_nanos() - self.now.as_nanos() < WHEEL_SLOTS as u64 {
            self.wheel.push(at, self.seq, proc);
        } else {
            let part = self.part_of[proc.0 as usize] as usize;
            self.parts[part].push(Timer {
                at,
                seq: self.seq,
                proc,
            });
            self.heap_len += 1;
        }
        self.seq
    }

    /// Lazily delete a pending timer: the entry stays in the heap but is
    /// discarded when it surfaces. Callers must only cancel timers that
    /// have not fired yet (a `Sleep` knows: its deadline is still ahead).
    #[inline]
    pub(crate) fn cancel_wake(&mut self, token: u64) {
        self.cancelled.insert(token);
    }

    /// Time of the earliest *live* pending timer, if any. Purges dead
    /// (cancelled) entries from the tops of the partition heaps as a
    /// side effect. The heap candidate is the minimum over all partition
    /// heads — skipped entirely (one integer test) when every pending
    /// timer is on the wheel, which is the common case for latency-scale
    /// workloads.
    #[inline]
    pub(crate) fn next_timer_at(&mut self) -> Option<SimTime> {
        let mut heap_at: Option<SimTime> = None;
        if self.heap_len > 0 {
            for part in self.parts.iter_mut() {
                let head = loop {
                    match part.peek() {
                        None => break None,
                        Some(t) => {
                            if self.cancelled.is_empty() || !self.cancelled.remove(&t.seq) {
                                break Some(t.at);
                            }
                            part.pop();
                            self.heap_len -= 1;
                        }
                    }
                };
                if let Some(at) = head {
                    heap_at = Some(heap_at.map_or(at, |h: SimTime| h.min(at)));
                }
            }
        }
        let wheel_at = loop {
            match self.wheel.next_at(self.now) {
                None => break None,
                Some(at) => {
                    if self.cancelled.is_empty() || self.wheel.purge(at, &mut self.cancelled) {
                        break Some(at);
                    }
                    // Slot was entirely cancelled entries; keep scanning.
                }
            }
        };
        match (heap_at, wheel_at) {
            (Some(h), Some(w)) => Some(h.min(w)),
            (h, None) => h,
            (None, w) => w,
        }
    }

    /// Fire every live timer due at instant `at` — which the caller just
    /// obtained from [`Kernel::next_timer_at`] — advancing `now` and
    /// waking the owners in schedule order.
    ///
    /// Cross-queue merge: due entries from every partition heap and from
    /// the wheel slot are collected into one scratch batch and woken in
    /// ascending `seq` — i.e. exact global `(at, seq)` order, identical
    /// to a single shared queue, which is what makes partitioning
    /// invisible in traces. Two properties keep the merge cheap:
    ///
    /// * *within* one heap, pops at equal `at` come out seq-sorted, and
    ///   a wheel slot is seq-sorted by construction (append-only, `seq`
    ///   monotone) — so each source is already sorted;
    /// * *across* the heap/wheel boundary, every heap-resident timer for
    ///   this instant was scheduled when the deadline was a full
    ///   wheel-horizon away, i.e. strictly earlier in virtual time than
    ///   any wheel-resident timer for the same instant — so all heap
    ///   seqs precede all wheel seqs, and the wheel batch can be
    ///   appended unsorted.
    ///
    /// The only case needing a sort is two or more *partition heaps*
    /// contributing at one instant, and then only the heap prefix of the
    /// batch is sorted. With one partition (the default) that never
    /// happens and this reduces to the old heap-then-wheel drain.
    #[inline]
    pub(crate) fn fire_timers_at(&mut self, at: SimTime) {
        self.now = at;
        let mut batch = std::mem::take(&mut self.fire_scratch);
        debug_assert!(batch.is_empty());
        let mut heap_sources = 0usize;
        if self.heap_len > 0 {
            for part in self.parts.iter_mut() {
                let mut contributed = false;
                while let Some(t) = part.peek() {
                    if t.at != at {
                        break;
                    }
                    let t = part.pop().unwrap();
                    self.heap_len -= 1;
                    if !self.cancelled.is_empty() && self.cancelled.remove(&t.seq) {
                        continue; // cancelled while queued at this instant
                    }
                    batch.push((t.seq, t.proc));
                    contributed = true;
                }
                if contributed {
                    heap_sources += 1;
                }
            }
        }
        if heap_sources > 1 {
            // Interleaved partitions: restore global schedule order.
            batch.sort_unstable_by_key(|&(seq, _)| seq);
        }
        if self.wheel.len > 0 {
            let s = TimerWheel::slot_of(at);
            if !self.wheel.slots[s].is_empty() {
                // Take the slot out so waking owners cannot alias the
                // wheel; its capacity is handed straight back.
                let mut slot = std::mem::take(&mut self.wheel.slots[s]);
                self.wheel.occupied[s / 64] &= !(1 << (s % 64));
                self.wheel.len -= slot.len();
                for &(seq, proc) in &slot {
                    if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                        continue;
                    }
                    batch.push((seq, proc));
                }
                slot.clear();
                self.wheel.slots[s] = slot;
            }
        }
        for &(_, proc) in &batch {
            self.make_ready(proc);
        }
        batch.clear();
        self.fire_scratch = batch;
    }

    /// Mark `id` finished and wake its joiners. The future has already
    /// been taken out by the poll loop; the slot's name allocation is
    /// recycled into the spawn pool.
    pub(crate) fn finish_proc(&mut self, id: ProcId) {
        let idx = id.0 as usize;
        let slot = &mut self.procs[idx];
        slot.status = ProcStatus::Done;
        slot.fut = None;
        self.current = None;
        self.live -= 1;
        self.recycle_name(idx);
        let waiters = std::mem::take(&mut self.join_waiters[idx]);
        for w in waiters {
            self.make_ready(w);
        }
    }

    /// Forcibly terminate a process. No-op if finished. Returns the
    /// process's future so the *caller* can drop it outside the kernel
    /// borrow (dropping it may re-enter the kernel, e.g. to cancel a
    /// pending sleep timer).
    #[must_use = "drop the returned future outside the kernel borrow"]
    pub(crate) fn kill_proc(&mut self, id: ProcId) -> Option<BoxedProc> {
        let idx = id.0 as usize;
        let slot = &mut self.procs[idx];
        if slot.status != ProcStatus::Alive {
            return None;
        }
        slot.status = ProcStatus::Killed;
        let fut = slot.fut.take();
        self.live -= 1;
        self.recycle_name(idx);
        let waiters = std::mem::take(&mut self.join_waiters[idx]);
        for w in waiters {
            self.make_ready(w);
        }
        fut
    }

    /// Move a finished slot's name into the spawn pool (bounded).
    fn recycle_name(&mut self, idx: usize) {
        if self.name_pool.len() < 64 {
            let name = std::mem::take(&mut self.names[idx]);
            if name.capacity() > 0 {
                self.name_pool.push(name);
            }
        }
    }

    /// Register `waiter` to be woken when `id` finishes.
    #[inline]
    pub(crate) fn add_join_waiter(&mut self, id: ProcId, waiter: ProcId) {
        self.join_waiters[id.0 as usize].push(waiter);
    }

    /// True if the process has terminated (normally or by kill).
    #[inline]
    pub(crate) fn is_finished(&self, id: ProcId) -> bool {
        self.procs[id.0 as usize].status != ProcStatus::Alive
    }

    /// Names of processes that are alive but not runnable — the deadlock set.
    pub(crate) fn blocked_proc_names(&self, cap: usize) -> Vec<String> {
        self.procs
            .iter()
            .zip(self.names.iter())
            .filter(|(s, _)| s.status == ProcStatus::Alive && !s.queued)
            .map(|(_, n)| n.clone())
            .take(cap)
            .collect()
    }
}
