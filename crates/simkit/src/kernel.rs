//! The simulation kernel: event queue, process table and ready list.
//!
//! The kernel is deliberately separated from the public [`crate::Sim`]
//! handle so that all mutation happens behind a single `RefCell`. The
//! executor never holds a kernel borrow while polling a process, which is
//! what allows process bodies to freely call back into the kernel (to
//! spawn, sleep, or touch channels) without re-entrancy panics.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;

use crate::time::SimTime;

/// Identifier of a simulated process. Dense, never reused within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A future pinned on the heap, as stored in the process table.
pub(crate) type BoxedProc = Pin<Box<dyn Future<Output = ()>>>;

/// State of a process slot.
pub(crate) enum ProcState {
    /// Runnable or blocked; the future lives here except while being polled.
    Alive(Option<BoxedProc>),
    /// Ran to completion.
    Done,
    /// Killed before completion (fault injection, job abort).
    Killed,
}

pub(crate) struct ProcSlot {
    pub(crate) state: ProcState,
    pub(crate) name: String,
    /// Processes waiting on this one's completion.
    pub(crate) join_waiters: Vec<ProcId>,
    /// Set while the process is in the ready list to avoid duplicate polls.
    pub(crate) queued: bool,
}

/// A timer entry in the event queue. Ordered by `(at, seq)` so that
/// simultaneous events fire in the order they were scheduled — this is the
/// cornerstone of reproducibility.
struct Timer {
    at: SimTime,
    seq: u64,
    proc: ProcId,
    /// Generation guard: a sleep that was cancelled (future dropped)
    /// must not wake an unrelated later sleep of the same process.
    token: u64,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Why [`crate::Simulation::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All processes finished and the event queue drained.
    Completed,
    /// The time horizon passed to `run_until` was reached.
    HorizonReached,
    /// Live processes remain but none can ever make progress.
    /// Contains the names of the blocked processes (up to a small cap).
    Deadlock(Vec<String>),
}

pub(crate) struct Kernel {
    pub(crate) now: SimTime,
    seq: u64,
    timers: BinaryHeap<Timer>,
    pub(crate) ready: VecDeque<ProcId>,
    pub(crate) procs: Vec<ProcSlot>,
    /// Currently polled process; valid only during a poll.
    pub(crate) current: Option<ProcId>,
    /// Number of slots still `Alive`.
    pub(crate) live: usize,
    /// Next sleep-token to hand out.
    token_seq: u64,
}

impl Kernel {
    pub(crate) fn new() -> Self {
        Kernel {
            now: SimTime::ZERO,
            seq: 0,
            timers: BinaryHeap::with_capacity(1024),
            ready: VecDeque::with_capacity(256),
            procs: Vec::with_capacity(256),
            current: None,
            live: 0,
            token_seq: 0,
        }
    }

    /// Register a new process; it becomes runnable immediately.
    pub(crate) fn add_proc(&mut self, name: String, fut: BoxedProc) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(ProcSlot {
            state: ProcState::Alive(Some(fut)),
            name,
            join_waiters: Vec::new(),
            queued: true,
        });
        self.live += 1;
        self.ready.push_back(id);
        id
    }

    /// The process being polled right now. Panics outside a poll: kernel
    /// futures may only be awaited from inside simulation processes.
    pub(crate) fn current_proc(&self) -> ProcId {
        self.current
            .expect("simkit future polled outside a simulation process")
    }

    /// Mark a process runnable (idempotent while already queued).
    pub(crate) fn make_ready(&mut self, id: ProcId) {
        let slot = &mut self.procs[id.0 as usize];
        if matches!(slot.state, ProcState::Alive(_)) && !slot.queued {
            slot.queued = true;
            self.ready.push_back(id);
        }
    }

    /// Schedule a wake-up for `proc` at absolute time `at`.
    /// Returns the token guarding this timer.
    pub(crate) fn schedule_wake(&mut self, at: SimTime, proc: ProcId) -> u64 {
        debug_assert!(at >= self.now, "cannot schedule in the past");
        self.seq += 1;
        self.token_seq += 1;
        let token = self.token_seq;
        self.timers.push(Timer {
            at,
            seq: self.seq,
            proc,
            token,
        });
        token
    }

    /// Time of the earliest pending timer, if any.
    pub(crate) fn next_timer_at(&self) -> Option<SimTime> {
        self.timers.peek().map(|t| t.at)
    }

    /// Pop every timer due at the earliest pending instant, advancing `now`.
    /// Wakes the owning processes in schedule order.
    pub(crate) fn fire_next_timers(&mut self) {
        let Some(at) = self.next_timer_at() else {
            return;
        };
        self.now = at;
        while self.timers.peek().is_some_and(|t| t.at == at) {
            let t = self.timers.pop().unwrap();
            // Tokens are currently always valid: sleeps are not cancelled
            // out from under the kernel (futures re-check their deadline on
            // poll, so a stale wake is at worst a spurious poll).
            let _ = t.token;
            self.make_ready(t.proc);
        }
    }

    /// Mark `id` finished and wake its joiners. Returns the waiters.
    pub(crate) fn finish_proc(&mut self, id: ProcId) {
        let slot = &mut self.procs[id.0 as usize];
        slot.state = ProcState::Done;
        self.live -= 1;
        let waiters = std::mem::take(&mut slot.join_waiters);
        for w in waiters {
            self.make_ready(w);
        }
    }

    /// Forcibly terminate a process (drops its future). No-op if finished.
    pub(crate) fn kill_proc(&mut self, id: ProcId) {
        let slot = &mut self.procs[id.0 as usize];
        if matches!(slot.state, ProcState::Alive(_)) {
            slot.state = ProcState::Killed;
            self.live -= 1;
            let waiters = std::mem::take(&mut slot.join_waiters);
            for w in waiters {
                self.make_ready(w);
            }
        }
    }

    /// True if the process has terminated (normally or by kill).
    pub(crate) fn is_finished(&self, id: ProcId) -> bool {
        !matches!(self.procs[id.0 as usize].state, ProcState::Alive(_))
    }

    /// Names of processes that are alive but not runnable — the deadlock set.
    pub(crate) fn blocked_proc_names(&self, cap: usize) -> Vec<String> {
        self.procs
            .iter()
            .filter(|s| matches!(s.state, ProcState::Alive(_)) && !s.queued)
            .map(|s| s.name.clone())
            .take(cap)
            .collect()
    }
}
