//! # deep-simkit — deterministic discrete-event simulation kernel
//!
//! The foundation of the `deep-rs` reproduction of the DEEP cluster-booster
//! architecture: a single-threaded, bit-reproducible discrete-event
//! simulator whose processes are ordinary Rust `async` blocks.
//!
//! ## Model
//!
//! * Virtual time is integer nanoseconds ([`SimTime`], [`SimDuration`]).
//! * A process is any `Future` spawned onto the [`Simulation`]; it suspends
//!   by awaiting kernel futures ([`Sim::sleep`], channel `recv`, semaphore
//!   `acquire`, …) and never blocks an OS thread.
//! * Events that fire at the same instant are ordered by a monotone
//!   sequence number, and every wait-list is FIFO, so a run is a pure
//!   function of (program, seed).
//! * Parallelism belongs *outside* the kernel: sweep replicas each get
//!   their own `Simulation` and can be farmed out with rayon by callers.
//!
//! ## Example
//!
//! ```
//! use deep_simkit::{Simulation, SimDuration, channel};
//!
//! let mut sim = Simulation::new(7);
//! let ctx = sim.handle();
//! let (tx, rx) = channel::<u64>(&ctx);
//!
//! let producer_ctx = ctx.clone();
//! sim.spawn("producer", async move {
//!     for i in 0..3 {
//!         producer_ctx.sleep(SimDuration::micros(10)).await;
//!         tx.send(i).await.unwrap();
//!     }
//! });
//! let consumer = sim.spawn("consumer", async move {
//!     let mut sum = 0;
//!     while let Ok(v) = rx.recv().await {
//!         sum += v;
//!     }
//!     sum
//! });
//! sim.run().assert_completed();
//! assert_eq!(consumer.try_result(), Some(3));
//! assert_eq!(sim.now().as_micros(), 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod kernel;
mod metrics;
mod race;
mod rng;
mod sim;
mod sync;
mod time;
mod timeout;
mod trace;

pub use channel::{bounded, channel, Receiver, RecvError, RecvFut, SendError, SendFut, Sender};
pub use kernel::{ProcId, RunOutcome};
pub use metrics::{CounterId, Histogram, HistogramId, Metrics, SeriesId};
pub use race::{Either, Race};
pub use rng::SimRng;
pub use sim::{ProcHandle, Sim, Simulation, Sleep, YieldNow};
pub use sync::{Barrier, BarrierWait, OneShot, OneShotWait, SemGuard, Semaphore};
pub use time::{SimDuration, SimTime};
pub use timeout::Timeout;
pub use trace::{TraceEvent, TraceKey};

/// Await several process handles, collecting their results in order.
/// Panics if any process was killed.
pub async fn join_all<T: 'static>(handles: Vec<ProcHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await.expect("joined process was killed"));
    }
    out
}
