//! Lightweight metrics: counters, log-2 bucket histograms, and time series.
//!
//! Registration uses string names (cold path); recording through the
//! returned dense ids is allocation-free (hot path), following the
//! integer-ids-over-strings idiom from the performance guides.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};

/// Dense handle to a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Dense handle to a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A histogram over `u64` samples with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^(i-1), 2^i)`; bucket 0 counts 0.
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile from bucket boundaries (upper bound of the
    /// bucket containing the q-quantile sample).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

/// Registry of named metrics for one simulation.
#[derive(Default)]
pub struct Metrics {
    counter_names: HashMap<String, CounterId>,
    counters: Vec<u64>,
    histogram_names: HashMap<String, HistogramId>,
    histograms: Vec<Histogram>,
    series: HashMap<String, Vec<(SimTime, f64)>>,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics::default()
    }

    /// Get-or-create a counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&id) = self.counter_names.get(name) {
            return id;
        }
        let id = CounterId(self.counters.len());
        self.counters.push(0);
        self.counter_names.insert(name.to_string(), id);
        id
    }

    /// Add to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, v: u64) {
        self.counters[id.0] += v;
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Read a counter by handle.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Read a counter by name (0 if never registered).
    pub fn counter_by_name(&self, name: &str) -> u64 {
        self.counter_names
            .get(name)
            .map_or(0, |&id| self.counters[id.0])
    }

    /// Get-or-create a histogram.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(&id) = self.histogram_names.get(name) {
            return id;
        }
        let id = HistogramId(self.histograms.len());
        self.histograms.push(Histogram::default());
        self.histogram_names.insert(name.to_string(), id);
        id
    }

    /// Record a histogram sample.
    #[inline]
    pub fn record(&mut self, id: HistogramId, v: u64) {
        self.histograms[id.0].record(v);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, id: HistogramId, d: SimDuration) {
        self.record(id, d.as_nanos());
    }

    /// Read a histogram by handle.
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0]
    }

    /// Read a histogram by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histogram_names
            .get(name)
            .map(|&id| &self.histograms[id.0])
    }

    /// Append a `(time, value)` point to a named series.
    pub fn push_series(&mut self, name: &str, t: SimTime, v: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((t, v));
    }

    /// Read a series by name.
    pub fn series(&self, name: &str) -> Option<&[(SimTime, f64)]> {
        self.series.get(name).map(|v| v.as_slice())
    }

    /// Iterate all counters as `(name, value)`, sorted by name.
    pub fn all_counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .counter_names
            .iter()
            .map(|(n, &id)| (n.clone(), self.counters[id.0]))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        let a = m.counter("msgs");
        let b = m.counter("bytes");
        m.inc(a);
        m.add(b, 100);
        m.add(b, 28);
        assert_eq!(m.counter_value(a), 1);
        assert_eq!(m.counter_by_name("bytes"), 128);
        assert_eq!(m.counter_by_name("nonexistent"), 0);
        // Re-registration returns the same id.
        assert_eq!(m.counter("msgs"), a);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1110);
        assert!((h.mean() - 1110.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        // q50 of 1..=1000 lives in the bucket [256,512) -> upper bound 512.
        assert_eq!(q50, 512);
    }

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(u64::MAX);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn series_append_and_read() {
        let mut m = Metrics::new();
        m.push_series("util", SimTime(10), 0.5);
        m.push_series("util", SimTime(20), 0.7);
        let s = m.series("util").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], (SimTime(20), 0.7));
        assert!(m.series("other").is_none());
    }
}
