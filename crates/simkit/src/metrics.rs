//! Lightweight metrics: counters, log-2 bucket histograms, and time series.
//!
//! Registration uses string names (cold path); recording through the
//! returned dense ids is allocation-free (hot path), following the
//! integer-ids-over-strings idiom from the performance guides.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};

/// Dense handle to a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Dense handle to a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Dense handle to a time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// A histogram over `u64` samples with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^(i-1), 2^i)`; bucket 0 counts 0.
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile from bucket boundaries: the *inclusive* upper
    /// bound of the bucket containing the q-quantile sample, clamped to
    /// the largest observed sample. Returns 0 when empty.
    ///
    /// Bucket 0 holds exactly `{0}`; bucket `i ≥ 1` holds
    /// `[2^(i-1), 2^i - 1]`; the top bucket (64) holds `[2^63, u64::MAX]`
    /// — its bound is `u64::MAX`, not the former `1u64 << 64`, which
    /// shift-overflowed (a panic in debug builds, a wrap to 1 in release).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let bound = match i {
                    0 => 0,
                    1..=63 => (1u64 << i) - 1,
                    _ => u64::MAX,
                };
                return bound.min(self.max);
            }
        }
        self.max
    }
}

/// Registry of named metrics for one simulation.
///
/// Export helpers (`all_counters`, `all_histograms`, `all_series`) return
/// name-sorted tables, so two identical runs print identical reports —
/// `HashMap` iteration order never leaks into output.
#[derive(Default)]
pub struct Metrics {
    counter_names: HashMap<String, CounterId>,
    counters: Vec<u64>,
    histogram_names: HashMap<String, HistogramId>,
    histograms: Vec<Histogram>,
    series_names: HashMap<String, SeriesId>,
    series: Vec<Vec<(SimTime, f64)>>,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics::default()
    }

    /// Get-or-create a counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&id) = self.counter_names.get(name) {
            return id;
        }
        let id = CounterId(self.counters.len());
        self.counters.push(0);
        self.counter_names.insert(name.to_string(), id);
        id
    }

    /// Add to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, v: u64) {
        self.counters[id.0] += v;
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Read a counter by handle.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Read a counter by name (0 if never registered).
    pub fn counter_by_name(&self, name: &str) -> u64 {
        self.counter_names
            .get(name)
            .map_or(0, |&id| self.counters[id.0])
    }

    /// Get-or-create a histogram.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(&id) = self.histogram_names.get(name) {
            return id;
        }
        let id = HistogramId(self.histograms.len());
        self.histograms.push(Histogram::default());
        self.histogram_names.insert(name.to_string(), id);
        id
    }

    /// Record a histogram sample.
    #[inline]
    pub fn record(&mut self, id: HistogramId, v: u64) {
        self.histograms[id.0].record(v);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, id: HistogramId, d: SimDuration) {
        self.record(id, d.as_nanos());
    }

    /// Read a histogram by handle.
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0]
    }

    /// Read a histogram by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histogram_names
            .get(name)
            .map(|&id| &self.histograms[id.0])
    }

    /// Get-or-create a time series.
    pub fn series_id(&mut self, name: &str) -> SeriesId {
        if let Some(&id) = self.series_names.get(name) {
            return id;
        }
        let id = SeriesId(self.series.len());
        self.series.push(Vec::new());
        self.series_names.insert(name.to_string(), id);
        id
    }

    /// Append a `(time, value)` point through a dense handle (hot path;
    /// no name hashing, no allocation).
    #[inline]
    pub fn push_series_id(&mut self, id: SeriesId, t: SimTime, v: f64) {
        self.series[id.0].push((t, v));
    }

    /// Append a `(time, value)` point to a named series. Allocates only
    /// on first registration of the name; prefer [`Metrics::series_id`] +
    /// [`Metrics::push_series_id`] in loops.
    pub fn push_series(&mut self, name: &str, t: SimTime, v: f64) {
        let id = self.series_id(name);
        self.push_series_id(id, t, v);
    }

    /// Read a series by name.
    pub fn series(&self, name: &str) -> Option<&[(SimTime, f64)]> {
        self.series_names
            .get(name)
            .map(|&id| self.series[id.0].as_slice())
    }

    /// Read a series by handle.
    pub fn series_value(&self, id: SeriesId) -> &[(SimTime, f64)] {
        &self.series[id.0]
    }

    /// Iterate all counters as `(name, value)`, sorted by name.
    pub fn all_counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .counter_names
            // deep-lint: allow(unordered-iter) — collected then sorted by name before exposure
            .iter()
            .map(|(n, &id)| (n.clone(), self.counters[id.0]))
            .collect();
        v.sort();
        v
    }

    /// Iterate all histograms as `(name, histogram)`, sorted by name.
    pub fn all_histograms(&self) -> Vec<(String, &Histogram)> {
        let mut v: Vec<(String, &Histogram)> = self
            .histogram_names
            // deep-lint: allow(unordered-iter) — collected then sorted by name before exposure
            .iter()
            .map(|(n, &id)| (n.clone(), &self.histograms[id.0]))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Iterate all series as `(name, points)`, sorted by name.
    pub fn all_series(&self) -> Vec<(String, &[(SimTime, f64)])> {
        let mut v: Vec<(String, &[(SimTime, f64)])> = self
            .series_names
            // deep-lint: allow(unordered-iter) — collected then sorted by name before exposure
            .iter()
            .map(|(n, &id)| (n.clone(), self.series[id.0].as_slice()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        let a = m.counter("msgs");
        let b = m.counter("bytes");
        m.inc(a);
        m.add(b, 100);
        m.add(b, 28);
        assert_eq!(m.counter_value(a), 1);
        assert_eq!(m.counter_by_name("bytes"), 128);
        assert_eq!(m.counter_by_name("nonexistent"), 0);
        // Re-registration returns the same id.
        assert_eq!(m.counter("msgs"), a);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1110);
        assert!((h.mean() - 1110.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        // q50 of 1..=1000 lives in the bucket [256, 511] -> inclusive
        // upper bound 511.
        assert_eq!(q50, 511);
        // The top quantile clamps to the observed maximum, not the
        // bucket's theoretical bound.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_top_bucket_no_shift_overflow() {
        // Samples at and above 2^63 land in bucket 64, whose inclusive
        // bound is u64::MAX — the old exclusive-bound formula computed
        // `1u64 << 64`, a shift overflow (debug panic / release wrap to
        // 1). This must hold under both `cargo test` and
        // `cargo test --release`.
        let mut h = Histogram::default();
        h.record(1u64 << 63);
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Both samples share bucket 64, so every quantile reports it.
        assert_eq!(h.quantile(0.1), u64::MAX);
        // Clamping: a single sub-max sample in the top bucket reports
        // the sample, not u64::MAX.
        let mut h2 = Histogram::default();
        h2.record((1u64 << 63) + 5);
        assert_eq!(h2.quantile(0.5), (1u64 << 63) + 5);
        // And the penultimate bucket's bound is now inclusive too.
        let mut h3 = Histogram::default();
        h3.record(1u64 << 62);
        h3.record(u64::MAX - 1);
        assert_eq!(h3.quantile(0.25), (1u64 << 63) - 1);
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.sum(), 0);
        // Documented empty-state sentinels.
        assert_eq!(h.min(), u64::MAX);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn empty_metrics_edge_cases() {
        let m = Metrics::new();
        assert!(m.all_counters().is_empty());
        assert!(m.all_histograms().is_empty());
        assert!(m.all_series().is_empty());
        assert!(m.series("nothing").is_none());
        assert_eq!(m.counter_by_name("nothing"), 0);
        assert!(m.histogram_by_name("nothing").is_none());
    }

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(u64::MAX);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn series_append_and_read() {
        let mut m = Metrics::new();
        m.push_series("util", SimTime(10), 0.5);
        m.push_series("util", SimTime(20), 0.7);
        let s = m.series("util").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], (SimTime(20), 0.7));
        assert!(m.series("other").is_none());
        // The dense-id hot path appends to the same series.
        let id = m.series_id("util");
        m.push_series_id(id, SimTime(30), 0.9);
        assert_eq!(m.series_value(id).len(), 3);
    }

    #[test]
    fn export_order_is_stable_across_insertion_orders() {
        // Two registries populated in opposite orders must export
        // identical tables — HashMap iteration order must not leak.
        let build = |names: &[&str]| {
            let mut m = Metrics::new();
            for n in names {
                // Values keyed on the name so both registries hold the
                // same data regardless of insertion order.
                let v = n.len() as u64;
                let c = m.counter(n);
                m.add(c, v);
                let h = m.histogram(n);
                m.record(h, 2 * v + 1);
                m.push_series(n, SimTime(v), v as f64);
            }
            m
        };
        let names = ["zeta", "alpha", "mid", "beta2", "beta"];
        let mut reversed = names;
        reversed.reverse();
        let (a, b) = (build(&names), build(&reversed));

        assert_eq!(a.all_counters(), b.all_counters());
        let report = |m: &Metrics| -> Vec<(String, u64, usize)> {
            let hs: Vec<_> = m
                .all_histograms()
                .into_iter()
                .map(|(n, h)| (n, h.count()))
                .collect();
            m.all_series()
                .into_iter()
                .zip(hs)
                .map(|((sn, pts), (hn, hc))| {
                    assert_eq!(sn, hn, "histogram and series tables align");
                    (sn, hc, pts.len())
                })
                .collect()
        };
        assert_eq!(report(&a), report(&b));
        let sorted: Vec<&str> = {
            let mut s = names.to_vec();
            s.sort_unstable();
            s
        };
        let exported: Vec<String> = a.all_counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(exported, sorted);
    }
}
