//! Property-based tests of the simulation kernel's core invariants.

use std::cell::RefCell;
use std::rc::Rc;

use deep_simkit::{Histogram, Semaphore, SimDuration, Simulation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events fire in exact (time, schedule-order) order no matter how
    /// the sleeps are arranged.
    #[test]
    fn timers_fire_in_total_order(delays in prop::collection::vec(0u64..10_000, 1..40)) {
        let mut sim = Simulation::new(1);
        let fired: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let ctx = sim.handle();
            let fired = fired.clone();
            sim.spawn(format!("p{i}"), async move {
                ctx.sleep(SimDuration::nanos(d)).await;
                fired.borrow_mut().push((ctx.now().as_nanos(), i));
            });
        }
        sim.run().assert_completed();
        let log = fired.borrow();
        prop_assert_eq!(log.len(), delays.len());
        // Time never decreases; ties break in spawn order.
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "ties break by schedule order");
            }
        }
    }

    /// Two runs with the same seed produce identical completion times.
    #[test]
    fn reruns_are_bit_identical(seed in 0u64..1000, n in 1usize..20) {
        fn run(seed: u64, n: usize) -> Vec<u64> {
            let mut sim = Simulation::new(seed);
            let mut handles = Vec::new();
            for i in 0..n {
                let ctx = sim.handle();
                handles.push(sim.spawn(format!("p{i}"), async move {
                    let mut rng = ctx.fork_rng(i as u64);
                    for _ in 0..5 {
                        ctx.sleep(SimDuration::nanos(rng.gen_range(1..500))).await;
                    }
                    ctx.now().as_nanos()
                }));
            }
            sim.run().assert_completed();
            handles.into_iter().map(|h| h.try_result().unwrap()).collect()
        }
        prop_assert_eq!(run(seed, n), run(seed, n));
    }

    /// Semaphore never exceeds its capacity and serves strictly FIFO.
    #[test]
    fn semaphore_capacity_and_fifo(
        permits in 1u64..8,
        requests in prop::collection::vec((1u64..4, 1u64..100), 1..30),
    ) {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let sem = Semaphore::new(&ctx, permits);
        let in_use: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
        let peak: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
        let grant_order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &(want, hold_ns)) in requests.iter().enumerate() {
            let want = want.min(permits);
            let (sem, ctx) = (sem.clone(), ctx.clone());
            let (in_use, peak, order) = (in_use.clone(), peak.clone(), grant_order.clone());
            sim.spawn(format!("u{i}"), async move {
                // Stagger arrival so the queueing order is the index order.
                ctx.sleep(SimDuration::nanos(i as u64)).await;
                let g = sem.acquire_many(want).await;
                order.borrow_mut().push(i);
                {
                    let mut u = in_use.borrow_mut();
                    *u += want;
                    let mut p = peak.borrow_mut();
                    *p = (*p).max(*u);
                }
                ctx.sleep(SimDuration::nanos(hold_ns)).await;
                *in_use.borrow_mut() -= want;
                drop(g);
            });
        }
        sim.run().assert_completed();
        prop_assert!(*peak.borrow() <= permits, "never oversubscribed");
        prop_assert_eq!(grant_order.borrow().len(), requests.len());
    }

    /// Histogram count/sum/min/max are exact; quantiles bracket the data.
    #[test]
    fn histogram_stats_exact(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::default();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        let q0 = h.quantile(0.0);
        let q50 = h.quantile(0.5);
        let q100 = h.quantile(1.0);
        prop_assert!(q0 <= q50 && q50 <= q100.max(h.max()));
    }

    /// Channels deliver every message exactly once, in order per sender.
    #[test]
    fn channels_lose_nothing(n_msgs in 1usize..200, n_senders in 1usize..5) {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let (tx, rx) = deep_simkit::channel::<(usize, usize)>(&ctx);
        for s in 0..n_senders {
            let tx = tx.clone();
            let ctx = ctx.clone();
            sim.spawn(format!("s{s}"), async move {
                for i in 0..n_msgs {
                    tx.send((s, i)).await.unwrap();
                    ctx.sleep(SimDuration::nanos(((s * 7 + i) % 13) as u64)).await;
                }
            });
        }
        drop(tx);
        let got = sim.spawn("rx", async move {
            let mut v = Vec::new();
            while let Ok(m) = rx.recv().await {
                v.push(m);
            }
            v
        });
        sim.run().assert_completed();
        let v = got.try_result().unwrap();
        prop_assert_eq!(v.len(), n_msgs * n_senders);
        // Per-sender order is preserved.
        for s in 0..n_senders {
            let seq: Vec<usize> = v.iter().filter(|(x, _)| *x == s).map(|(_, i)| *i).collect();
            prop_assert_eq!(seq, (0..n_msgs).collect::<Vec<_>>());
        }
    }
}
