//! Roofline execution-time model.
//!
//! A kernel is characterised by the work it does — floating-point
//! operations and bytes moved to/from memory — plus an efficiency factor
//! describing how close a tuned implementation gets to peak. Execution
//! time on a node is the *maximum* of compute time and memory time
//! (perfect overlap assumption, standard roofline).

use deep_simkit::SimDuration;

use crate::node::NodeModel;

/// Work profile of a computational kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Double-precision floating-point operations.
    pub flops: f64,
    /// Bytes moved between memory and cores.
    pub bytes: f64,
    /// Fraction of vector peak a tuned implementation reaches (0..=1].
    pub compute_efficiency: f64,
    /// Fraction of stream bandwidth reached (0..=1].
    pub bandwidth_efficiency: f64,
}

impl KernelProfile {
    /// A compute-bound, well-vectorised kernel (DGEMM-like).
    pub fn dgemm(n: u64) -> KernelProfile {
        let nf = n as f64;
        KernelProfile {
            flops: 2.0 * nf * nf * nf,
            // Blocked: each element reused; traffic ~ 3 matrices a few times.
            bytes: 8.0 * 4.0 * nf * nf,
            compute_efficiency: 0.80,
            bandwidth_efficiency: 0.85,
        }
    }

    /// A memory-bound sparse matrix-vector multiply with `nnz` non-zeros.
    pub fn spmv(nnz: u64) -> KernelProfile {
        let nnzf = nnz as f64;
        KernelProfile {
            flops: 2.0 * nnzf,
            // value + column index per non-zero, plus vector traffic.
            bytes: 14.0 * nnzf,
            compute_efficiency: 0.85,
            bandwidth_efficiency: 0.60,
        }
    }

    /// A 2-D 5-point Jacobi sweep over `cells` grid cells.
    pub fn stencil2d(cells: u64) -> KernelProfile {
        let c = cells as f64;
        KernelProfile {
            flops: 5.0 * c,
            bytes: 16.0 * c, // read + write a double per cell, cached halo
            compute_efficiency: 0.9,
            bandwidth_efficiency: 0.8,
        }
    }

    /// Arithmetic intensity in flops/byte.
    pub fn intensity(&self) -> f64 {
        self.flops / self.bytes
    }

    /// Scale the amount of work (both flops and bytes) by a factor.
    pub fn scaled(mut self, factor: f64) -> KernelProfile {
        self.flops *= factor;
        self.bytes *= factor;
        self
    }
}

/// Outcome of a roofline evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Wall time of the kernel.
    pub time: SimDuration,
    /// Sustained flop/s.
    pub sustained_flops: f64,
    /// True when limited by memory bandwidth rather than compute.
    pub memory_bound: bool,
}

/// Execution time of `kernel` using `cores_used` cores of `node`,
/// assuming vectorised code.
pub fn exec_time(node: &NodeModel, kernel: &KernelProfile, cores_used: u32) -> RooflinePoint {
    exec_time_with_mode(node, kernel, cores_used, true)
}

/// Execution time with explicit vectorisation flag. Non-vectorised code
/// only reaches the node's `scalar_fraction_of_peak` — this is what makes
/// offloading *serial* code to a booster node a bad idea, exactly as the
/// paper argues.
pub fn exec_time_with_mode(
    node: &NodeModel,
    kernel: &KernelProfile,
    cores_used: u32,
    vectorised: bool,
) -> RooflinePoint {
    assert!(cores_used >= 1 && cores_used <= node.cores, "core count");
    assert!(kernel.flops >= 0.0 && kernel.bytes >= 0.0);
    let peak = node.core.peak_flops() * cores_used as f64;
    let eff = if vectorised {
        kernel.compute_efficiency
    } else {
        node.core.scalar_fraction_of_peak
    };
    let compute_s = kernel.flops / (peak * eff);
    // Memory bandwidth is shared by the whole node; a subset of cores can
    // usually saturate a large fraction of it.
    let bw = node.mem_bw_bps
        * kernel.bandwidth_efficiency
        * (cores_used as f64 / node.cores as f64).sqrt().min(1.0);
    let memory_s = kernel.bytes / bw;
    let secs = compute_s.max(memory_s);
    RooflinePoint {
        time: SimDuration::from_secs_f64(secs),
        sustained_flops: if secs > 0.0 { kernel.flops / secs } else { 0.0 },
        memory_bound: memory_s > compute_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeModel;

    #[test]
    fn dgemm_is_compute_bound_spmv_memory_bound() {
        let node = NodeModel::xeon_cluster_node();
        let dgemm = exec_time(&node, &KernelProfile::dgemm(2048), node.cores);
        assert!(!dgemm.memory_bound);
        let spmv = exec_time(&node, &KernelProfile::spmv(10_000_000), node.cores);
        assert!(spmv.memory_bound);
    }

    #[test]
    fn knc_beats_xeon_on_vector_code_loses_on_scalar() {
        let xeon = NodeModel::xeon_cluster_node();
        let knc = NodeModel::xeon_phi_knc();
        let k = KernelProfile::dgemm(4096);
        let t_xeon = exec_time(&xeon, &k, xeon.cores).time;
        let t_knc = exec_time(&knc, &k, knc.cores).time;
        assert!(
            t_knc < t_xeon,
            "KNC should win on vectorised DGEMM ({t_knc} vs {t_xeon})"
        );
        // Scalar code: the booster's in-order cores collapse.
        let t_xeon_s = exec_time_with_mode(&xeon, &k, 1, false).time;
        let t_knc_s = exec_time_with_mode(&knc, &k, 1, false).time;
        assert!(
            t_knc_s > t_xeon_s * 4,
            "single in-order KNC core should be several times slower on scalar code"
        );
    }

    #[test]
    fn more_cores_never_slower() {
        let node = NodeModel::xeon_phi_knc();
        let k = KernelProfile::dgemm(1024);
        let mut prev = exec_time(&node, &k, 1).time;
        for c in 2..=node.cores {
            let t = exec_time(&node, &k, c).time;
            assert!(t <= prev, "time must be non-increasing in cores");
            prev = t;
        }
    }

    #[test]
    fn sustained_never_exceeds_peak() {
        for node in [
            NodeModel::xeon_cluster_node(),
            NodeModel::xeon_phi_knc(),
            NodeModel::gpu_k20x(),
        ] {
            let k = KernelProfile::dgemm(4096);
            let p = exec_time(&node, &k, node.cores);
            assert!(p.sustained_flops <= node.peak_flops() * 1.0000001);
        }
    }

    #[test]
    fn intensity_and_scaling() {
        let k = KernelProfile::spmv(1000);
        assert!((k.intensity() - 2.0 / 14.0).abs() < 1e-12);
        let k2 = k.scaled(3.0);
        assert!((k2.flops - 3.0 * k.flops).abs() < 1e-9);
        assert!((k2.intensity() - k.intensity()).abs() < 1e-12);
    }
}
