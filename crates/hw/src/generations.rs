//! System generations and technology-scaling laws.
//!
//! Backs experiments F02 (slide 2/4: Meuer's law ×1000/decade vs Moore's
//! law ×100/decade) and F05 (slide 5: BG/P→BG/Q ≈ ×20 at the same energy
//! envelope while commodity processors gain only ×4–8 per four years),
//! plus the slide-18 "positioning" lineage of Jülich systems.

/// One installed system generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemGeneration {
    /// System name.
    pub name: String,
    /// Year of installation.
    pub year: u32,
    /// Peak performance in GFlop/s.
    pub peak_gflops: f64,
    /// Facility power in kW.
    pub power_kw: f64,
    /// Scalability class for the positioning figure.
    pub class: ScalabilityClass,
}

/// Where a machine sits on the paper's slide-18 positioning figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalabilityClass {
    /// Highly scalable architecture (Blue Gene lineage).
    HighlyScalable,
    /// Low-to-medium scalable architecture (general-purpose clusters).
    LowMediumScalable,
    /// The DEEP cluster-booster: spans both regimes.
    Dual,
}

/// The Jülich lineage shown on slide 18, augmented with power figures.
pub fn juelich_lineage() -> Vec<SystemGeneration> {
    use ScalabilityClass::*;
    vec![
        SystemGeneration {
            name: "IBM Power 4 (JUMP)".into(),
            year: 2004,
            peak_gflops: 9_000.0,
            power_kw: 500.0,
            class: LowMediumScalable,
        },
        SystemGeneration {
            name: "IBM Blue Gene/L (JUBL)".into(),
            year: 2005,
            peak_gflops: 45_000.0,
            power_kw: 500.0,
            class: HighlyScalable,
        },
        SystemGeneration {
            name: "IBM Blue Gene/P (JUGENE, 16 racks)".into(),
            year: 2007,
            peak_gflops: 223_000.0,
            power_kw: 560.0,
            class: HighlyScalable,
        },
        SystemGeneration {
            name: "IBM Power 6 (JUMP)".into(),
            year: 2008,
            peak_gflops: 9_000.0,
            power_kw: 450.0,
            class: LowMediumScalable,
        },
        SystemGeneration {
            name: "Intel Nehalem cluster (JUROPA)".into(),
            year: 2009,
            peak_gflops: 300_000.0,
            power_kw: 1_500.0,
            class: LowMediumScalable,
        },
        SystemGeneration {
            name: "IBM Blue Gene/P (JUGENE, 72 racks)".into(),
            year: 2009,
            peak_gflops: 1_000_000.0,
            power_kw: 2_500.0,
            class: HighlyScalable,
        },
        SystemGeneration {
            name: "IBM Blue Gene/Q (JUQUEEN)".into(),
            year: 2013,
            peak_gflops: 5_900_000.0,
            power_kw: 2_300.0,
            class: HighlyScalable,
        },
        SystemGeneration {
            name: "DEEP System (Cluster + Booster)".into(),
            year: 2014,
            peak_gflops: 505_000.0,
            power_kw: 150.0,
            class: Dual,
        },
    ]
}

/// Meuer's law: supercomputer performance grows ×1000 per decade.
/// Returns the projected factor over `years`.
pub fn meuer_factor(years: f64) -> f64 {
    1000f64.powf(years / 10.0)
}

/// Moore's law: transistor count doubles every 1.5 years (×~100/decade).
pub fn moore_factor(years: f64) -> f64 {
    2f64.powf(years / 1.5)
}

/// Least-squares growth factor per decade of a `(year, value)` series.
pub fn fitted_factor_per_decade(points: &[(u32, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points to fit");
    let n = points.len() as f64;
    let mean_x = points.iter().map(|&(y, _)| y as f64).sum::<f64>() / n;
    let mean_y = points.iter().map(|&(_, v)| v.log10()).sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for &(y, v) in points {
        let dx = y as f64 - mean_x;
        num += dx * (v.log10() - mean_y);
        den += dx * dx;
    }
    let slope_per_year = num / den; // log10 units per year
    10f64.powf(slope_per_year * 10.0)
}

/// Historical Top500 #1 systems (peak GFlop/s) — the slide-2 evolution data.
pub fn top500_number_one() -> Vec<(u32, f64)> {
    vec![
        (1993, 59.7),         // CM-5
        (1994, 170.0),        // Numerical Wind Tunnel
        (1996, 368.2),        // SR2201/CP-PACS
        (1997, 1_338.0),      // ASCI Red
        (2000, 4_938.0),      // ASCI White
        (2002, 35_860.0),     // Earth Simulator
        (2004, 70_720.0),     // BG/L (initial)
        (2005, 280_600.0),    // BG/L (full)
        (2008, 1_026_000.0),  // Roadrunner
        (2009, 1_759_000.0),  // Jaguar
        (2010, 2_566_000.0),  // Tianhe-1A
        (2011, 10_510_000.0), // K computer
        (2012, 17_590_000.0), // Titan
        (2013, 33_860_000.0), // Tianhe-2
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meuer_and_moore_decade_factors() {
        assert!((meuer_factor(10.0) - 1000.0).abs() < 1e-9);
        let m = moore_factor(10.0);
        assert!(
            (90.0..120.0).contains(&m),
            "Moore per decade ≈100, got {m:.1}"
        );
    }

    #[test]
    fn top500_fit_matches_meuer_law() {
        let f = fitted_factor_per_decade(&top500_number_one());
        // Slide 2: performance grows ×1000 per decade. The 1993–2013 fit
        // lands in the same order of magnitude.
        assert!(
            (400.0..2500.0).contains(&f),
            "fitted factor/decade {f:.0} should be ~1000"
        );
    }

    #[test]
    fn bgp_to_bgq_factor_about_20_at_same_power() {
        let lineage = juelich_lineage();
        let bgp = lineage
            .iter()
            .find(|g| g.name.contains("72 racks"))
            .unwrap();
        let bgq = lineage.iter().find(|g| g.name.contains("JUQUEEN")).unwrap();
        let speed = bgq.peak_gflops / bgp.peak_gflops;
        let power = bgq.power_kw / bgp.power_kw;
        // Slide 5: "factor 20 in compute speed at the same energy envelope".
        // JUGENE(1PF)→JUQUEEN(5.9PF) at slightly lower power is ~6.4x per
        // installation; per-rack (16-rack JUGENE vs JUQUEEN) it is ~26x.
        let bgp16 = lineage
            .iter()
            .find(|g| g.name.contains("16 racks"))
            .unwrap();
        let per_gen = bgq.peak_gflops / bgp16.peak_gflops;
        assert!(per_gen > 20.0, "generation step {per_gen:.1} ≥ 20");
        assert!(speed > 5.0 && power < 1.1, "same envelope, big speedup");
    }

    #[test]
    fn commodity_cpu_factor_4_to_8_per_4_years() {
        // Per-socket peak: Nehalem-EP 2009 (4c × 2.93 GHz × 4) vs
        // Sandy Bridge-EP 2012-13 (8c × 2.7 GHz × 8).
        let nehalem = 4.0 * 2.93e9 * 4.0;
        let snb = 8.0 * 2.7e9 * 8.0;
        let factor = snb / nehalem;
        assert!(
            (3.0..8.0).contains(&factor),
            "commodity step {factor:.1} in ~4 years, paper says 4–8"
        );
    }

    #[test]
    fn fit_recovers_exact_exponential() {
        // Synthetic series growing exactly 10x/decade.
        let pts: Vec<(u32, f64)> = (0..10)
            .map(|i| (2000 + i, 10f64.powf(i as f64 / 10.0)))
            .collect();
        let f = fitted_factor_per_decade(&pts);
        assert!((f - 10.0).abs() < 1e-6);
    }

    #[test]
    fn lineage_is_chronological_and_growing() {
        let lineage = juelich_lineage();
        for w in lineage.windows(2) {
            assert!(w[0].year <= w[1].year);
        }
        let hs: Vec<&SystemGeneration> = lineage
            .iter()
            .filter(|g| g.class == ScalabilityClass::HighlyScalable)
            .collect();
        for w in hs.windows(2) {
            assert!(w[0].peak_gflops < w[1].peak_gflops);
        }
    }
}
