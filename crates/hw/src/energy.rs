//! Power and energy accounting.
//!
//! Nodes have a linear power model between idle and peak as a function of
//! utilisation; an [`EnergyMeter`] integrates power over virtual-time
//! intervals. This supports the paper's energy-efficiency arguments
//! (slide 3: "are ~100 MW acceptable?"; slide 15: "5 GFlop/W").

use deep_simkit::SimDuration;

/// Linear idle↔peak power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Watts drawn when idle.
    pub idle_w: f64,
    /// Watts drawn at full utilisation.
    pub peak_w: f64,
}

impl PowerModel {
    /// Power at a utilisation in [0, 1].
    pub fn power_at(&self, utilisation: f64) -> f64 {
        let u = utilisation.clamp(0.0, 1.0);
        self.idle_w + (self.peak_w - self.idle_w) * u
    }
}

/// Accumulates energy over intervals of known utilisation.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    joules: f64,
    busy: SimDuration,
    idle: SimDuration,
}

impl EnergyMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account an interval at a given utilisation.
    pub fn record(&mut self, power: &PowerModel, d: SimDuration, utilisation: f64) {
        self.joules += power.power_at(utilisation) * d.as_secs_f64();
        if utilisation > 0.0 {
            self.busy += d;
        } else {
            self.idle += d;
        }
    }

    /// Total energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total busy time accounted.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Total idle time accounted.
    pub fn idle_time(&self) -> SimDuration {
        self.idle
    }

    /// Achieved GFlop/s-per-watt for `flops` of useful work done over the
    /// recorded intervals.
    pub fn gflops_per_watt(&self, flops: f64) -> f64 {
        let total_s = (self.busy + self.idle).as_secs_f64();
        if total_s <= 0.0 || self.joules <= 0.0 {
            return 0.0;
        }
        let avg_power = self.joules / total_s;
        (flops / total_s) / 1e9 / avg_power
    }

    /// Merge another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.joules += other.joules;
        self.busy += other.busy;
        self.idle += other.idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_interpolates_linearly() {
        let p = PowerModel {
            idle_w: 100.0,
            peak_w: 300.0,
        };
        assert_eq!(p.power_at(0.0), 100.0);
        assert_eq!(p.power_at(1.0), 300.0);
        assert_eq!(p.power_at(0.5), 200.0);
        // Clamped outside [0,1].
        assert_eq!(p.power_at(-1.0), 100.0);
        assert_eq!(p.power_at(2.0), 300.0);
    }

    #[test]
    fn meter_integrates_energy() {
        let p = PowerModel {
            idle_w: 100.0,
            peak_w: 300.0,
        };
        let mut m = EnergyMeter::new();
        m.record(&p, SimDuration::secs(10), 1.0); // 3000 J
        m.record(&p, SimDuration::secs(10), 0.0); // 1000 J
        assert!((m.joules() - 4000.0).abs() < 1e-9);
        assert_eq!(m.busy_time(), SimDuration::secs(10));
        assert_eq!(m.idle_time(), SimDuration::secs(10));
    }

    #[test]
    fn gflops_per_watt_matches_hand_calculation() {
        let p = PowerModel {
            idle_w: 0.0,
            peak_w: 200.0,
        };
        let mut m = EnergyMeter::new();
        m.record(&p, SimDuration::secs(1), 1.0); // 200 J over 1 s
                                                 // 1e12 flops in 1 s at 200 W = 1000 GF / 200 W = 5 GF/W.
        let eff = m.gflops_per_watt(1e12);
        assert!((eff - 5.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let p = PowerModel {
            idle_w: 50.0,
            peak_w: 150.0,
        };
        let mut a = EnergyMeter::new();
        a.record(&p, SimDuration::secs(1), 1.0);
        let mut b = EnergyMeter::new();
        b.record(&p, SimDuration::secs(2), 0.0);
        a.merge(&b);
        assert!((a.joules() - (150.0 + 100.0)).abs() < 1e-9);
        assert_eq!(a.idle_time(), SimDuration::secs(2));
    }
}
