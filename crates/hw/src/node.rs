//! Node and processor models.
//!
//! A [`NodeModel`] is a first-order analytic description of a compute node:
//! core count, clock, peak flops per cycle, memory bandwidth and power.
//! Kernel execution time follows the roofline model (see
//! [`crate::roofline`]): a kernel is either compute-bound or memory-bound.
//!
//! The presets encode the hardware the DEEP paper builds on — Intel Xeon
//! (Sandy Bridge) cluster nodes, Intel Xeon Phi "Knights Corner" booster
//! nodes, GPU-accelerated nodes for the conventional-accelerated-cluster
//! baseline, and the Blue Gene generations used by the paper's rationale
//! slide.

use crate::energy::PowerModel;
use deep_json::{object, Value};

/// Which side of a DEEP machine a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// General-purpose cluster node (fast cores, complex code).
    Cluster,
    /// Many-core booster node (slow cores, wide vectors, HSCP code).
    Booster,
    /// PCIe-attached accelerator card hosted by a cluster node.
    Accelerator,
    /// Booster-interface bridge node.
    BoosterInterface,
}

impl NodeClass {
    /// Stable name used in JSON documents.
    pub fn as_str(&self) -> &'static str {
        match self {
            NodeClass::Cluster => "cluster",
            NodeClass::Booster => "booster",
            NodeClass::Accelerator => "accelerator",
            NodeClass::BoosterInterface => "booster_interface",
        }
    }

    /// Inverse of [`NodeClass::as_str`].
    pub fn from_str_name(s: &str) -> Option<NodeClass> {
        match s {
            "cluster" => Some(NodeClass::Cluster),
            "booster" => Some(NodeClass::Booster),
            "accelerator" => Some(NodeClass::Accelerator),
            "booster_interface" => Some(NodeClass::BoosterInterface),
            _ => None,
        }
    }
}

/// A single core: clock and per-cycle floating-point throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreModel {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Peak double-precision flops per cycle (vector width × FMA).
    pub flops_per_cycle: f64,
    /// Throughput derating for non-vectorizable scalar-ish code paths.
    pub scalar_fraction_of_peak: f64,
}

impl CoreModel {
    /// Peak DP flop/s of one core.
    pub fn peak_flops(&self) -> f64 {
        self.clock_hz * self.flops_per_cycle
    }
}

/// Analytic model of one compute node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeModel {
    /// Human-readable model name.
    pub name: String,
    /// Node class in the DEEP architecture.
    pub class: NodeClass,
    /// Number of cores.
    pub cores: u32,
    /// Per-core model.
    pub core: CoreModel,
    /// Sustainable memory bandwidth, bytes/second.
    pub mem_bw_bps: f64,
    /// Node memory capacity in bytes.
    pub mem_capacity: u64,
    /// Power model (idle/peak watts).
    pub power: PowerModel,
    /// Year of introduction (used by the generation experiments).
    pub year: u32,
}

impl NodeModel {
    /// Peak DP flop/s of the whole node.
    pub fn peak_flops(&self) -> f64 {
        self.core.peak_flops() * self.cores as f64
    }

    /// Peak energy efficiency in GFlop/s per watt at full load.
    pub fn peak_gflops_per_watt(&self) -> f64 {
        self.peak_flops() / 1e9 / self.power.peak_w
    }

    /// Serialise to a JSON value.
    pub fn to_json(&self) -> Value {
        object([
            ("name", self.name.as_str().into()),
            ("class", self.class.as_str().into()),
            ("cores", self.cores.into()),
            (
                "core",
                object([
                    ("clock_hz", self.core.clock_hz.into()),
                    ("flops_per_cycle", self.core.flops_per_cycle.into()),
                    (
                        "scalar_fraction_of_peak",
                        self.core.scalar_fraction_of_peak.into(),
                    ),
                ]),
            ),
            ("mem_bw_bps", self.mem_bw_bps.into()),
            ("mem_capacity", self.mem_capacity.into()),
            (
                "power",
                object([
                    ("idle_w", self.power.idle_w.into()),
                    ("peak_w", self.power.peak_w.into()),
                ]),
            ),
            ("year", self.year.into()),
        ])
    }

    /// Deserialise from a JSON value produced by [`NodeModel::to_json`].
    pub fn from_json(v: &Value) -> Option<NodeModel> {
        let core = v.get("core")?;
        let power = v.get("power")?;
        Some(NodeModel {
            name: v.get("name")?.as_str()?.to_string(),
            class: NodeClass::from_str_name(v.get("class")?.as_str()?)?,
            cores: v.get("cores")?.as_u64()? as u32,
            core: CoreModel {
                clock_hz: core.get("clock_hz")?.as_f64()?,
                flops_per_cycle: core.get("flops_per_cycle")?.as_f64()?,
                scalar_fraction_of_peak: core.get("scalar_fraction_of_peak")?.as_f64()?,
            },
            mem_bw_bps: v.get("mem_bw_bps")?.as_f64()?,
            mem_capacity: v.get("mem_capacity")?.as_u64()?,
            power: PowerModel {
                idle_w: power.get("idle_w")?.as_f64()?,
                peak_w: power.get("peak_w")?.as_f64()?,
            },
            year: v.get("year")?.as_u64()? as u32,
        })
    }

    // -- Presets ----------------------------------------------------------

    /// DEEP cluster node: dual-socket Intel Xeon E5 (Sandy Bridge),
    /// 2 × 8 cores @ 2.7 GHz, 8 DP flops/cycle (AVX), ~345 GF peak,
    /// ~102 GB/s stream bandwidth, ~350 W under load → ≈ 1 GFlop/W.
    pub fn xeon_cluster_node() -> NodeModel {
        NodeModel {
            name: "Xeon E5-2680 node (2S)".into(),
            class: NodeClass::Cluster,
            cores: 16,
            core: CoreModel {
                clock_hz: 2.7e9,
                flops_per_cycle: 8.0,
                scalar_fraction_of_peak: 0.25,
            },
            mem_bw_bps: 102e9,
            mem_capacity: 64 << 30,
            power: PowerModel {
                idle_w: 120.0,
                peak_w: 350.0,
            },
            year: 2012,
        }
    }

    /// DEEP booster node: Intel Xeon Phi "Knights Corner",
    /// 60 cores @ 1.053 GHz, 16 DP flops/cycle (512-bit FMA),
    /// ≈ 1011 GF peak, ~170 GB/s GDDR5, ~200 W → ≈ 5 GFlop/W
    /// (the paper's slide-15 claim).
    pub fn xeon_phi_knc() -> NodeModel {
        NodeModel {
            name: "Xeon Phi KNC (booster node)".into(),
            class: NodeClass::Booster,
            cores: 60,
            core: CoreModel {
                clock_hz: 1.053e9,
                flops_per_cycle: 16.0,
                // In-order cores: scalar code runs far below peak.
                scalar_fraction_of_peak: 0.05,
            },
            mem_bw_bps: 170e9,
            mem_capacity: 8 << 30,
            power: PowerModel {
                idle_w: 95.0,
                peak_w: 200.0,
            },
            year: 2012,
        }
    }

    /// GPU accelerator card of the era (K20X-like) for the conventional
    /// accelerated-cluster baseline: 1.31 TF DP peak, 250 W, PCIe-attached.
    pub fn gpu_k20x() -> NodeModel {
        NodeModel {
            name: "GPU K20X (PCIe accelerator)".into(),
            class: NodeClass::Accelerator,
            cores: 14, // SMX count; flops folded into flops_per_cycle
            core: CoreModel {
                clock_hz: 0.732e9,
                flops_per_cycle: 128.0,
                scalar_fraction_of_peak: 0.02,
            },
            mem_bw_bps: 250e9,
            mem_capacity: 6 << 30,
            power: PowerModel {
                idle_w: 25.0,
                peak_w: 250.0,
            },
            year: 2012,
        }
    }

    /// Booster-interface node: a lean Xeon host bridging InfiniBand and
    /// EXTOLL; compute hardly matters, forwarding does.
    pub fn booster_interface_node() -> NodeModel {
        NodeModel {
            name: "Booster Interface node".into(),
            class: NodeClass::BoosterInterface,
            cores: 8,
            core: CoreModel {
                clock_hz: 2.4e9,
                flops_per_cycle: 8.0,
                scalar_fraction_of_peak: 0.25,
            },
            mem_bw_bps: 51e9,
            mem_capacity: 32 << 30,
            power: PowerModel {
                idle_w: 80.0,
                peak_w: 220.0,
            },
            year: 2012,
        }
    }

    /// Blue Gene/P node: 4 × PPC450 @ 850 MHz, 4 flops/cycle,
    /// 13.6 GF/node. System-level efficiency ≈ 0.36 GF/W.
    pub fn bluegene_p_node() -> NodeModel {
        NodeModel {
            name: "Blue Gene/P node".into(),
            class: NodeClass::Cluster,
            cores: 4,
            core: CoreModel {
                clock_hz: 0.85e9,
                flops_per_cycle: 4.0,
                // In-order PPC450: poor on scalar, branchy code.
                scalar_fraction_of_peak: 0.15,
            },
            mem_bw_bps: 13.6e9,
            mem_capacity: 2 << 30,
            power: PowerModel {
                idle_w: 16.0,
                peak_w: 38.0,
            },
            year: 2007,
        }
    }

    /// Blue Gene/Q node: 16 × A2 @ 1.6 GHz, 8 flops/cycle, 204.8 GF/node,
    /// ≈ 2.1 GF/W under load — the "factor 20 at the same energy envelope"
    /// the paper's rationale slide cites.
    pub fn bluegene_q_node() -> NodeModel {
        NodeModel {
            name: "Blue Gene/Q node".into(),
            class: NodeClass::Cluster,
            cores: 16,
            core: CoreModel {
                clock_hz: 1.6e9,
                flops_per_cycle: 8.0,
                // In-order A2 core: needs 4-way SMT to fill pipelines;
                // single-stream scalar code sees ~10 % of peak.
                scalar_fraction_of_peak: 0.10,
            },
            mem_bw_bps: 42.6e9,
            mem_capacity: 16 << 30,
            power: PowerModel {
                idle_w: 40.0,
                peak_w: 95.0,
            },
            year: 2011,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knc_hits_paper_efficiency_claim() {
        let knc = NodeModel::xeon_phi_knc();
        let eff = knc.peak_gflops_per_watt();
        // Slide 15: "Energy efficient: 5 GFlop/W".
        assert!(
            (eff - 5.0).abs() < 0.3,
            "KNC efficiency {eff:.2} GF/W should be ≈5"
        );
        // Peak around 1 TF.
        assert!((knc.peak_flops() / 1e12 - 1.0).abs() < 0.05);
    }

    #[test]
    fn xeon_node_is_about_one_gflop_per_watt() {
        let xeon = NodeModel::xeon_cluster_node();
        let eff = xeon.peak_gflops_per_watt();
        assert!(
            (0.8..=1.2).contains(&eff),
            "Xeon efficiency {eff:.2} GF/W should be ≈1"
        );
    }

    #[test]
    fn booster_vs_cluster_efficiency_factor_about_five() {
        let ratio = NodeModel::xeon_phi_knc().peak_gflops_per_watt()
            / NodeModel::xeon_cluster_node().peak_gflops_per_watt();
        assert!(
            (4.0..=6.5).contains(&ratio),
            "efficiency ratio {ratio:.2} should be ≈5"
        );
    }

    #[test]
    fn node_model_json_roundtrip() {
        for model in [
            NodeModel::xeon_cluster_node(),
            NodeModel::xeon_phi_knc(),
            NodeModel::gpu_k20x(),
            NodeModel::booster_interface_node(),
        ] {
            let v = model.to_json();
            let parsed = deep_json::from_str(&v.to_json()).unwrap();
            let back = NodeModel::from_json(&parsed).unwrap();
            assert_eq!(back, model);
        }
    }

    #[test]
    fn bluegene_generation_step() {
        // Per-node speedup P→Q.
        let p = NodeModel::bluegene_p_node();
        let q = NodeModel::bluegene_q_node();
        let node_ratio = q.peak_flops() / p.peak_flops();
        assert!(node_ratio > 14.0, "BG/Q node is ~15x a BG/P node");
        // Efficiency improves by roughly the same factor at similar power.
        let power_ratio = q.power.peak_w / p.power.peak_w;
        assert!(power_ratio < 3.0, "per-node power grows far slower");
    }
}
