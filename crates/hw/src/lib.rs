//! # deep-hw — hardware models for the DEEP reproduction
//!
//! First-order analytic models of the hardware the DEEP project builds on:
//!
//! * [`node::NodeModel`] — cores, clocks, vector width, memory bandwidth
//!   and power for Xeon cluster nodes, Xeon Phi (KNC) booster nodes, GPU
//!   accelerator cards and Blue Gene generations;
//! * [`roofline`] — kernel execution time as max(compute, memory) time;
//! * [`energy`] — linear power model + energy integration;
//! * [`generations`] — technology-scaling laws (Moore, Meuer) and the
//!   Jülich system lineage behind the paper's motivation slides.
//!
//! These models intentionally stay analytic: the experiments in this
//! reproduction depend on peak/sustained throughput ratios and power, not
//! on cycle-accurate microarchitecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod generations;
pub mod node;
pub mod roofline;

pub use energy::{EnergyMeter, PowerModel};
pub use node::{CoreModel, NodeClass, NodeModel};
pub use roofline::{exec_time, exec_time_with_mode, KernelProfile, RooflinePoint};
