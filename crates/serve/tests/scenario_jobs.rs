//! Scenario jobs through the daemon scheduler: validation at the
//! trust boundary, byte-identity with the library/`run_scenario`
//! path, and digest-keyed cache hits on resubmission (including
//! reformatted copies of the same document).

use std::time::Duration;

use deep_json::{object, Value};
use deep_serve::protocol::{JobRequest, JobSpec};
use deep_serve::scheduler::{Scheduler, SchedulerConfig};

const SCENARIO_TOML: &str = "\
[scenario]
name = \"serve-roundtrip\"
seed = 7
replicas = 4

[machine]
preset = \"small\"

[app]
skeleton = \"resilience\"
work_s = 20000.0
mtbf_node_s = 250000.0
checkpoint_s = 120.0
restart_s = 300.0
intervals = [\"daly\"]

[[sweep.axes]]
param = \"n_nodes\"
values = [64, 256]
";

fn scenario_request(client: &str, toml: &str) -> JobRequest {
    let doc = deep_scenario::parse_toml(toml).unwrap();
    let body = object([("client", client.into()), ("scenario", doc)]);
    JobRequest::from_json(&body).unwrap()
}

fn wait_terminal(s: &Scheduler, id: u64) -> Value {
    let mut seen = 0;
    loop {
        let (fresh, terminal) = s
            .events_after(id, seen, Duration::from_millis(200))
            .unwrap();
        seen += fresh.len();
        if terminal {
            return s.job_json(id).unwrap();
        }
    }
}

#[test]
fn scenario_job_matches_library_execution_and_caches() {
    let s = Scheduler::new(SchedulerConfig {
        workers: 1,
        ..SchedulerConfig::default()
    })
    .unwrap();
    let a = s.submit(scenario_request("ci", SCENARIO_TOML)).unwrap();
    assert!(!a.cached);
    let done = wait_terminal(&s, a.job_id);
    assert_eq!(done["state"], "done");

    // Byte-identity with the library path (which run_scenario shares).
    let sc = deep_scenario::Scenario::from_toml_str(SCENARIO_TOML).unwrap();
    let expect = deep_scenario::execute(&sc);
    assert_eq!(
        done["result"].to_json(),
        expect.to_json(),
        "daemon result must be byte-identical to the library path"
    );

    // A reformatted copy of the document (extra comments/whitespace,
    // reordered keys within tables) digests identically → cache hit.
    let reformatted = "\
# same scenario, shuffled and commented
[scenario]
seed = 7          # moved up
name = \"serve-roundtrip\"
replicas = 4

[machine]
preset = \"small\"

[app]
intervals = [\"daly\"]
restart_s = 300.0
checkpoint_s = 120.0
mtbf_node_s = 250000.0
work_s = 20000.0
skeleton = \"resilience\"

[[sweep.axes]]
values = [64, 256]
param = \"n_nodes\"
";
    let b = s.submit(scenario_request("other", reformatted)).unwrap();
    assert!(b.cached, "reordered document must hit the same cache entry");
    let hit = s.job_json(b.job_id).unwrap();
    assert_eq!(hit["cache_hit"].as_bool(), Some(true));
    assert_eq!(hit["result"].to_json(), done["result"].to_json());
    s.shutdown();
}

#[test]
fn invalid_scenario_rejected_at_admission() {
    let doc = deep_scenario::parse_toml(
        "[scenario]\nname = \"bad\"\nseed = 1\n\n[machine]\npreset = \"warehouse\"\n",
    )
    .unwrap();
    let body = object([("scenario", doc)]);
    let err = JobRequest::from_json(&body).unwrap_err();
    assert_eq!(
        err,
        "scenario: machine: unknown preset 'warehouse' (use 'small', 'medium', 'prototype')"
    );
}

#[test]
fn scenario_spec_digest_matches_run_scenario_cache_key() {
    let req = scenario_request("anon", SCENARIO_TOML);
    let JobSpec::Scenario(_) = &req.spec else {
        panic!("expected scenario spec");
    };
    let sc = deep_scenario::Scenario::from_toml_str(SCENARIO_TOML).unwrap();
    assert_eq!(
        req.spec.digest_hex(),
        format!("{:016x}", deep_scenario::cache_key(&sc)),
        "daemon and run_scenario must share cache entries"
    );
}
