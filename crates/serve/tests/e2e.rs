//! End-to-end tests: a real daemon on a loopback socket, real HTTP
//! clients, every acceptance property of the serve subsystem.
//!
//! Each test boots its own `Server` on port 0 with a private
//! termination flag (the sigshim flag is process-global and one-way,
//! so tests drive drain through [`ServerHandle::begin_drain`]
//! instead).

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use deep_serve::client::{ServeClient, Submitted};
use deep_serve::scheduler::SchedulerConfig;
use deep_serve::server::{Server, ServerHandle};

/// A daemon under test: drain + join on drop-by-hand.
struct Daemon {
    handle: ServerHandle,
    addr: String,
    thread: JoinHandle<std::io::Result<()>>,
}

fn boot(cfg: SchedulerConfig) -> Daemon {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let handle = server.handle();
    let addr = server.addr.to_string();
    // Leak one flag per daemon: `run` borrows it for the daemon's
    // lifetime, which outlives this stack frame.
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let thread = std::thread::spawn(move || server.run(flag));
    Daemon {
        handle,
        addr,
        thread,
    }
}

impl Daemon {
    fn stop(self) {
        self.handle.begin_drain();
        self.thread
            .join()
            .expect("daemon thread")
            .expect("daemon exits cleanly");
    }
}

fn experiment_body(client: &str, name: &str) -> String {
    format!(r#"{{"client":"{client}","experiment":"{name}"}}"#)
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    let daemon = boot(SchedulerConfig {
        workers: 2,
        queue_bound: 16,
        ..SchedulerConfig::default()
    });
    let direct = deep_bench::experiments::run_to_string("f02_evolution").unwrap();

    // ≥4 concurrent clients, separate connections, same experiment.
    let barrier = Arc::new(Barrier::new(4));
    let outputs: Vec<String> = (0..4)
        .map(|i| {
            let addr = daemon.addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).expect("connect");
                barrier.wait();
                let job = client
                    .submit_and_wait(
                        &experiment_body(&format!("tenant-{i}"), "f02_evolution"),
                        20,
                    )
                    .expect("job completes");
                assert_eq!(job["state"].as_str(), Some("done"), "{}", job.to_json());
                job["result"]["output"]
                    .as_str()
                    .expect("output")
                    .to_string()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    for out in &outputs {
        assert_eq!(
            out, &direct,
            "daemon output must be byte-identical to the direct run"
        );
    }
    daemon.stop();
}

#[test]
fn resubmission_is_a_cache_hit_with_fast_service() {
    let daemon = boot(SchedulerConfig::default());
    let mut client = ServeClient::connect(&daemon.addr).expect("connect");

    let cold = client
        .submit_and_wait(&experiment_body("ci", "f02_evolution"), 20)
        .expect("cold run");
    assert_eq!(cold["cache_hit"].as_bool(), Some(false));

    let warm = client
        .submit_and_wait(&experiment_body("ci", "f02_evolution"), 20)
        .expect("warm run");
    assert_eq!(warm["cache_hit"].as_bool(), Some(true));
    assert_eq!(
        warm["result"].to_json(),
        cold["result"].to_json(),
        "cache hit must be byte-identical"
    );
    // A hit never touches a worker: service time is the digest + map
    // lookup. Give the assertion 100x headroom over "sub-millisecond"
    // for debug builds and noisy CI — it still catches any accidental
    // re-execution (the cold run takes far longer than 100 ms here).
    let micros = warm["service_micros"].as_u64().expect("service time");
    assert!(micros < 100_000, "cache hit took {micros}us");
    daemon.stop();
}

#[test]
fn full_queue_rejects_with_retry_after_and_recovers() {
    let daemon = boot(SchedulerConfig {
        workers: 1,
        queue_bound: 2,
        ..SchedulerConfig::default()
    });
    let mut client = ServeClient::connect(&daemon.addr).expect("connect");

    // Occupy the single worker, then fill the two queue slots.
    let mut admitted = Vec::new();
    let mut saw_backoff = None;
    for _ in 0..8 {
        match client
            .submit_raw(r#"{"client":"flood","sleep_ms":400}"#)
            .expect("submit")
        {
            Submitted::Job(job) => admitted.push(job["id"].as_u64().unwrap()),
            Submitted::Backoff {
                status,
                retry_after_s,
            } => {
                saw_backoff = Some((status, retry_after_s));
                break;
            }
        }
    }
    let (status, retry_after_s) = saw_backoff.expect("flood must hit the bound");
    assert_eq!(status, 429);
    assert!(
        retry_after_s >= 1,
        "Retry-After must be present and positive"
    );
    assert!(
        admitted.len() <= 3,
        "bound 2 + running 1 admitted {admitted:?}"
    );

    // Admitted jobs still finish, and capacity comes back.
    for id in admitted {
        loop {
            let job = client.job(id).expect("status");
            if job["state"].as_str() == Some("done") {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    match client
        .submit_raw(r#"{"client":"flood","sleep_ms":1}"#)
        .expect("submit after drain of queue")
    {
        Submitted::Job(_) => {}
        Submitted::Backoff { status, .. } => panic!("still rejected: HTTP {status}"),
    }
    daemon.stop();
}

#[test]
fn drain_rejects_with_503_and_finishes_inflight_jobs() {
    let daemon = boot(SchedulerConfig {
        workers: 1,
        ..SchedulerConfig::default()
    });
    let mut client = ServeClient::connect(&daemon.addr).expect("connect");
    let inflight = match client
        .submit_raw(r#"{"client":"ops","sleep_ms":300}"#)
        .expect("submit")
    {
        Submitted::Job(job) => job["id"].as_u64().unwrap(),
        other => panic!("expected admission, got {other:?}"),
    };

    daemon.handle.begin_drain();
    match client
        .submit_raw(r#"{"client":"ops","sleep_ms":1}"#)
        .expect("submit during drain")
    {
        Submitted::Backoff {
            status,
            retry_after_s,
        } => {
            assert_eq!(status, 503);
            assert!(retry_after_s >= 1);
        }
        Submitted::Job(job) => panic!("draining daemon admitted a job: {}", job.to_json()),
    }

    // Watch the in-flight job to its terminal state over the still-
    // open connection: drain must let it finish, not kill it.
    let job = loop {
        let job = client.job(inflight).expect("status during drain");
        if job["state"].as_str() == Some("done") {
            break job;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(job["result"]["slept_ms"].as_u64(), Some(300));
    // And the daemon exits cleanly only after that.
    daemon
        .thread
        .join()
        .expect("daemon thread")
        .expect("clean drain");
}

#[test]
fn health_metrics_and_errors_speak_http() {
    let daemon = boot(SchedulerConfig::default());
    let mut client = ServeClient::connect(&daemon.addr).expect("connect");

    let health = client.healthz().expect("healthz");
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["draining"].as_bool(), Some(false));

    client
        .submit_and_wait(&experiment_body("m", "f02_evolution"), 20)
        .expect("job");
    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics.contains("deep_serve_jobs_submitted_total 1"),
        "{metrics}"
    );

    // Unknown job, unknown route, malformed body, unknown experiment.
    assert!(client.job(999).is_err());
    let err = client
        .submit_raw(r#"{"experiment":"no_such_thing"}"#)
        .expect_err("unknown experiment is a 400");
    assert!(err.to_string().contains("400"), "{err}");
    let err = client
        .submit_raw("this is not json")
        .expect_err("malformed body is a 400");
    assert!(err.to_string().contains("400"), "{err}");
    daemon.stop();
}

#[test]
fn event_stream_narrates_the_job_lifecycle() {
    let daemon = boot(SchedulerConfig {
        workers: 1,
        ..SchedulerConfig::default()
    });
    let mut client = ServeClient::connect(&daemon.addr).expect("connect");
    // A multi-point sweep slow enough to still be running when the
    // watcher attaches (the worker is parked behind a sleep first).
    let sweep = r#"{"client":"w","sweep":{"seed":7,"replicas":2,"points":[
        {"work_s":20000,"n_nodes":640,"mtbf_node_s":157680000,
         "checkpoint_s":120,"restart_s":300,"interval_s":1800},
        {"work_s":20000,"n_nodes":640,"mtbf_node_s":157680000,
         "checkpoint_s":120,"restart_s":300,"interval_s":3600}]}}"#;
    client
        .submit_raw(r#"{"client":"w","sleep_ms":150}"#)
        .expect("parking job");
    let id = match client.submit_raw(sweep).expect("submit sweep") {
        Submitted::Job(job) => job["id"].as_u64().unwrap(),
        other => panic!("expected admission, got {other:?}"),
    };

    let watcher = ServeClient::connect(&daemon.addr).expect("watcher connect");
    let mut states = Vec::new();
    watcher
        .watch_events(id, |ev| {
            states.push(ev["state"].as_str().unwrap_or("?").to_string());
        })
        .expect("event stream");
    assert_eq!(states.first().map(String::as_str), Some("queued"));
    assert!(
        states.iter().any(|s| s == "started"),
        "missing started: {states:?}"
    );
    assert_eq!(states.last().map(String::as_str), Some("done"));
    // Events arrive seq-ordered and the job JSON agrees.
    let job = client.job(id).expect("status");
    assert_eq!(job["state"].as_str(), Some("done"));
    assert_eq!(
        job["result"]["points"].as_array().map(Vec::len),
        Some(2),
        "{}",
        job.to_json()
    );
    daemon.stop();
}

#[test]
fn sweep_results_match_direct_evaluation_bit_for_bit() {
    let daemon = boot(SchedulerConfig::default());
    let mut client = ServeClient::connect(&daemon.addr).expect("connect");
    let sweep = r#"{"client":"v","sweep":{"seed":11,"replicas":3,"points":[
        {"work_s":10000,"n_nodes":640,"mtbf_node_s":15768000,
         "checkpoint_s":120,"restart_s":300,"interval_s":2700}]}}"#;
    let job = client.submit_and_wait(sweep, 20).expect("sweep");
    assert_eq!(job["state"].as_str(), Some("done"));
    let served = job["result"]["points"][0]["efficiency"]
        .as_f64()
        .expect("efficiency");
    let direct = deep_core::resilience::mean_efficiency(
        &deep_core::resilience::ResilienceParams {
            work_s: 10_000.0,
            n_nodes: 640,
            mtbf_node_s: 15_768_000.0,
            checkpoint_s: 120.0,
            restart_s: 300.0,
        },
        2700.0,
        11,
        3,
    );
    assert_eq!(
        served.to_bits(),
        direct.efficiency.to_bits(),
        "served {served} vs direct {}",
        direct.efficiency
    );
    daemon.stop();
}

#[test]
fn fairness_round_robins_between_clients_under_contention() {
    let daemon = boot(SchedulerConfig {
        workers: 1,
        queue_bound: 16,
        ..SchedulerConfig::default()
    });
    let mut submitter = ServeClient::connect(&daemon.addr).expect("connect");
    // Park the worker so the queue builds deterministically.
    submitter
        .submit_raw(r#"{"client":"park","sleep_ms":250}"#)
        .expect("parking job");
    let mut greedy_ids = Vec::new();
    for _ in 0..3 {
        if let Submitted::Job(job) = submitter
            .submit_raw(r#"{"client":"greedy","sleep_ms":1}"#)
            .expect("submit")
        {
            greedy_ids.push(job["id"].as_u64().unwrap());
        }
    }
    let modest_id = match submitter
        .submit_raw(r#"{"client":"modest","sleep_ms":1}"#)
        .expect("submit")
    {
        Submitted::Job(job) => job["id"].as_u64().unwrap(),
        other => panic!("expected admission, got {other:?}"),
    };

    let deadline = Instant::now() + Duration::from_secs(10);
    let wait_done = |client: &mut ServeClient, id: u64| loop {
        let job = client.job(id).expect("status");
        if job["state"].as_str() == Some("done") {
            break job;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    };
    let modest = wait_done(&mut submitter, modest_id);
    let greedy_last = wait_done(&mut submitter, *greedy_ids.last().unwrap());
    // Round-robin: the modest client's only job (submitted last) must
    // not wait behind the greedy client's whole backlog.
    assert!(
        modest["service_micros"].as_u64().unwrap()
            < greedy_last["service_micros"].as_u64().unwrap(),
        "modest {} vs greedy-last {}",
        modest.to_json(),
        greedy_last.to_json()
    );
    daemon.stop();
}
