//! `deep-serve`: simulation-as-a-service on top of the deterministic
//! experiment engine — the DEEP prototype's "cluster as a shared
//! facility" operations model, scaled down to one host.
//!
//! The paper's cluster-booster machine is operated as a service: users
//! submit jobs, a resource manager apportions heterogeneous resources
//! among them, and results are reproducible because the system — not
//! the user — controls placement. This crate closes the same loop for
//! the simulator: a dependency-free HTTP daemon ([`server`]) admits
//! simulation jobs, a scheduler ([`scheduler`]) apportions the
//! work-stealing pool between them with the booster-assignment policy
//! from `deep-resmgr`, and a content-addressed cache (keyed by the
//! canonical config digest from `deep_json::digest`) memoises results
//! across submissions — possible *only because* every result is a
//! pure function of its config, the invariant the rest of the
//! workspace defends.
//!
//! Everything is `std`-only: sockets via `std::net`, HTTP/1.1 by hand
//! ([`http`]), payloads via `deep-json`, SIGTERM via the vendored
//! `sigshim`. See `docs/serve.md` for the wire API and DESIGN.md §14
//! for the architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod protocol;
pub mod scheduler;
pub mod server;
