//! Minimal HTTP client for talking to a `deep-serve` daemon — used by
//! the `deep-submit` binary, the `serve_bench` throughput driver, and
//! the end-to-end tests. One connection per [`ServeClient`],
//! keep-alive across calls.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use deep_json::Value;

use crate::http::{read_response, read_response_head, ChunkedReader, ClientResponse};

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// A connected client.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    host: String,
}

/// Outcome of a submission, HTTP details decoded.
#[derive(Debug)]
pub enum Submitted {
    /// Admitted (or served from cache): the job JSON as returned.
    Job(Value),
    /// 429/503 backpressure with the suggested retry delay.
    Backoff {
        /// HTTP status (429 or 503).
        status: u16,
        /// `Retry-After` in seconds (1 when the header is absent).
        retry_after_s: u32,
    },
}

impl ServeClient {
    /// Connect to `addr` (e.g. `"127.0.0.1:8723"`).
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            host: addr.to_string(),
        })
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n",
            self.host,
            body.len()
        )?;
        if !body.is_empty() {
            self.writer
                .write_all(b"Content-Type: application/json\r\n")?;
        }
        self.writer.write_all(b"\r\n")?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }

    /// POST a submission body to `/jobs`.
    pub fn submit_raw(&mut self, body: &str) -> io::Result<Submitted> {
        let resp = self.request("POST", "/jobs", Some(body))?;
        match resp.status {
            200 | 202 => Ok(Submitted::Job(parse_json_body(&resp)?)),
            429 | 503 => Ok(Submitted::Backoff {
                status: resp.status,
                retry_after_s: resp
                    .header("retry-after")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1),
            }),
            s => {
                let detail = String::from_utf8_lossy(&resp.body).trim().to_string();
                Err(bad(&format!("submit failed: HTTP {s}: {detail}")))
            }
        }
    }

    /// GET a job's current status JSON.
    pub fn job(&mut self, id: u64) -> io::Result<Value> {
        let resp = self.request("GET", &format!("/jobs/{id}"), None)?;
        if resp.status != 200 {
            return Err(bad(&format!("job {id}: HTTP {}", resp.status)));
        }
        parse_json_body(&resp)
    }

    /// GET `/healthz`.
    pub fn healthz(&mut self) -> io::Result<Value> {
        let resp = self.request("GET", "/healthz", None)?;
        if resp.status != 200 {
            return Err(bad(&format!("healthz: HTTP {}", resp.status)));
        }
        parse_json_body(&resp)
    }

    /// GET `/metrics` as text.
    pub fn metrics(&mut self) -> io::Result<String> {
        let resp = self.request("GET", "/metrics", None)?;
        if resp.status != 200 {
            return Err(bad(&format!("metrics: HTTP {}", resp.status)));
        }
        String::from_utf8(resp.body).map_err(|_| bad("metrics body not UTF-8"))
    }

    /// Stream `/jobs/<id>/events`, invoking `on_event` per NDJSON
    /// event as it arrives, until the stream ends (job terminal).
    /// Consumes the connection — the server closes it after the
    /// stream.
    pub fn watch_events(mut self, id: u64, mut on_event: impl FnMut(&Value)) -> io::Result<()> {
        write!(
            self.writer,
            "GET /jobs/{id}/events HTTP/1.1\r\nHost: {}\r\nContent-Length: 0\r\n\r\n",
            self.host
        )?;
        self.writer.flush()?;
        let (status, _headers) = read_response_head(&mut self.reader)?;
        if status != 200 {
            return Err(bad(&format!("events {id}: HTTP {status}")));
        }
        let mut lines = BufReader::new(ChunkedReader::new(&mut self.reader));
        let mut line = String::new();
        while lines.read_line(&mut line)? > 0 {
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                let ev = deep_json::from_str(trimmed)
                    .map_err(|e| bad(&format!("bad event line: {e}")))?;
                on_event(&ev);
            }
            line.clear();
        }
        Ok(())
    }

    /// Submit and wait for a terminal state, backing off on 429/503 as
    /// the server instructs (up to `max_retries` times). Returns the
    /// terminal job JSON.
    pub fn submit_and_wait(&mut self, body: &str, max_retries: u32) -> io::Result<Value> {
        let mut retries = 0;
        let job = loop {
            match self.submit_raw(body)? {
                Submitted::Job(job) => break job,
                Submitted::Backoff {
                    status,
                    retry_after_s,
                } => {
                    if retries >= max_retries {
                        return Err(bad(&format!(
                            "gave up after {retries} retries (last: HTTP {status})"
                        )));
                    }
                    retries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(
                        u64::from(retry_after_s) * 200,
                    ));
                }
            }
        };
        let id = job["id"].as_u64().ok_or_else(|| bad("job without id"))?;
        let mut state = job["state"].as_str().unwrap_or("").to_string();
        let mut latest = job;
        while state != "done" && state != "failed" {
            std::thread::sleep(std::time::Duration::from_millis(25));
            latest = self.job(id)?;
            state = latest["state"].as_str().unwrap_or("").to_string();
        }
        Ok(latest)
    }
}

fn parse_json_body(resp: &ClientResponse) -> io::Result<Value> {
    deep_json::from_slice(&resp.body).map_err(|e| bad(&format!("bad JSON body: {e}")))
}
