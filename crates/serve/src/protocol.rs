//! Job wire protocol: what clients POST, what the daemon stores, and
//! the canonical config digest that keys the result cache.
//!
//! A submission is a JSON object with an optional `"client"` member
//! (fairness bucket; defaults to `"anon"`) plus exactly one job spec:
//!
//! * `{"experiment": "<name>"}` — run a registered experiment from
//!   `deep_bench::experiments::ALL`; result is its rendered stdout.
//! * `{"sweep": {"seed": …, "replicas": …, "points": [{…}, …]}}` — an
//!   explicit resilience-efficiency sweep over
//!   [`deep_core::resilience::mean_efficiency`]; each point names the
//!   full `ResilienceParams` plus the checkpoint interval.
//! * `{"scenario": {...}}` — a declarative scenario document (the
//!   JSON image of a `deep_scenario` TOML file), validated against the
//!   full schema at admission and evaluated through
//!   [`deep_scenario::execute`]; byte-identical to `run_scenario` on
//!   the same document.
//! * `{"sleep_ms": n}` — a do-nothing workload (capped at 10 s) for
//!   tests and operations drills; never cached.
//!
//! The cache digest is computed over the *spec only* — the `client`
//! member is stripped first, so the same config submitted by two
//! tenants is one cache entry. Canonicalisation (key order, number
//! formatting) is `deep_json::digest`'s business; this module only
//! decides which bytes participate.

use deep_core::resilience::ResilienceParams;
use deep_json::{object, Value};

/// Upper bound on `sleep_ms` jobs, so a typo cannot wedge a worker.
pub const MAX_SLEEP_MS: u64 = 10_000;
/// Upper bound on points in one sweep submission.
pub const MAX_SWEEP_POINTS: usize = 4096;
/// Upper bound on replicas per sweep point.
pub const MAX_REPLICAS: u32 = 1024;

/// One point of an explicit resilience sweep: the full scenario plus
/// the checkpoint interval to evaluate it at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Useful work to complete, seconds.
    pub work_s: f64,
    /// Nodes the job runs on.
    pub n_nodes: u64,
    /// Per-node MTBF, seconds.
    pub mtbf_node_s: f64,
    /// Checkpoint write cost, seconds.
    pub checkpoint_s: f64,
    /// Restart cost after a failure, seconds.
    pub restart_s: f64,
    /// Checkpoint interval to evaluate, seconds.
    pub interval_s: f64,
}

impl SweepPoint {
    /// The simulator parameter struct for this point.
    pub fn params(&self) -> ResilienceParams {
        ResilienceParams {
            work_s: self.work_s,
            n_nodes: self.n_nodes,
            mtbf_node_s: self.mtbf_node_s,
            checkpoint_s: self.checkpoint_s,
            restart_s: self.restart_s,
        }
    }

    /// JSON form (member order = struct order; canonicalisation for
    /// digests happens downstream).
    pub fn to_json(&self) -> Value {
        object([
            ("work_s", self.work_s.into()),
            ("n_nodes", self.n_nodes.into()),
            ("mtbf_node_s", self.mtbf_node_s.into()),
            ("checkpoint_s", self.checkpoint_s.into()),
            ("restart_s", self.restart_s.into()),
            ("interval_s", self.interval_s.into()),
        ])
    }

    /// Parse one point; every member is required and must be finite
    /// and positive (zero nodes or non-positive work would panic deep
    /// in the simulator, so it is rejected here at the trust
    /// boundary).
    pub fn from_json(v: &Value) -> Result<SweepPoint, String> {
        let num = |key: &str| -> Result<f64, String> {
            let n = v
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("sweep point: missing or non-numeric '{key}'"))?;
            if !n.is_finite() || n <= 0.0 {
                return Err(format!("sweep point: '{key}' must be finite and > 0"));
            }
            Ok(n)
        };
        let n_nodes = v
            .get("n_nodes")
            .and_then(Value::as_u64)
            .filter(|&n| n > 0)
            .ok_or("sweep point: 'n_nodes' must be a positive integer")?;
        Ok(SweepPoint {
            work_s: num("work_s")?,
            n_nodes,
            mtbf_node_s: num("mtbf_node_s")?,
            checkpoint_s: num("checkpoint_s")?,
            restart_s: num("restart_s")?,
            interval_s: num("interval_s")?,
        })
    }
}

/// An explicit sweep: shared RNG seed and replica count, one result
/// per point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Base RNG seed (replica streams derive from it).
    pub seed: u64,
    /// Replicas averaged per point.
    pub replicas: u32,
    /// The points to evaluate.
    pub points: Vec<SweepPoint>,
}

impl SweepConfig {
    /// JSON form.
    pub fn to_json(&self) -> Value {
        object([
            ("seed", self.seed.into()),
            ("replicas", self.replicas.into()),
            (
                "points",
                Value::Array(self.points.iter().map(SweepPoint::to_json).collect()),
            ),
        ])
    }

    /// Parse and validate a sweep config.
    pub fn from_json(v: &Value) -> Result<SweepConfig, String> {
        let seed = v
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or("sweep: missing or non-integer 'seed'")?;
        let replicas =
            v.get("replicas")
                .and_then(Value::as_u64)
                .filter(|&r| r >= 1 && r <= MAX_REPLICAS as u64)
                .ok_or("sweep: 'replicas' must be an integer in 1..=1024")? as u32;
        let points = v
            .get("points")
            .and_then(Value::as_array)
            .ok_or("sweep: missing 'points' array")?;
        if points.is_empty() || points.len() > MAX_SWEEP_POINTS {
            return Err(format!(
                "sweep: 'points' must hold 1..={MAX_SWEEP_POINTS} entries"
            ));
        }
        Ok(SweepConfig {
            seed,
            replicas,
            points: points
                .iter()
                .map(SweepPoint::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Two sweeps are batchable into one `par_sweep` call when their
    /// RNG configuration matches: replica streams derive only from
    /// `(seed, replica index)`, never from the point's position in the
    /// merged list, so concatenating point lists cannot change any
    /// per-point result.
    pub fn compatible_with(&self, other: &SweepConfig) -> bool {
        self.seed == other.seed && self.replicas == other.replicas
    }
}

/// What a job asks the daemon to do.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A registered experiment by name.
    Experiment(String),
    /// An explicit resilience sweep.
    Sweep(SweepConfig),
    /// A declarative scenario document (validated at admission; the
    /// raw document is kept so the cache digest matches
    /// `run_scenario`'s byte-for-byte).
    Scenario(Value),
    /// Sleep (test/ops workload; uncached).
    SleepMs(u64),
}

impl JobSpec {
    /// JSON form — exactly the shape clients submit, minus `client`.
    pub fn to_json(&self) -> Value {
        match self {
            JobSpec::Experiment(name) => object([("experiment", name.as_str().into())]),
            JobSpec::Sweep(cfg) => object([("sweep", cfg.to_json())]),
            JobSpec::Scenario(doc) => object([("scenario", doc.clone())]),
            JobSpec::SleepMs(ms) => object([("sleep_ms", (*ms).into())]),
        }
    }

    /// Whether results of this spec are cacheable. Sleeps are not:
    /// their whole point is to occupy a worker.
    pub fn cacheable(&self) -> bool {
        !matches!(self, JobSpec::SleepMs(_))
    }

    /// Parse the spec part of a submission (must contain exactly one
    /// of the spec members).
    pub fn from_json(v: &Value) -> Result<JobSpec, String> {
        let members = ["experiment", "sweep", "scenario", "sleep_ms"];
        let present: Vec<&str> = members
            .iter()
            .copied()
            .filter(|m| v.get(m).is_some())
            .collect();
        match present.as_slice() {
            ["experiment"] => {
                let name = v
                    .get("experiment")
                    .and_then(Value::as_str)
                    .ok_or("'experiment' must be a string")?;
                if deep_bench::experiments::find(name).is_none() {
                    return Err(format!("unknown experiment '{name}'"));
                }
                Ok(JobSpec::Experiment(name.to_string()))
            }
            ["sweep"] => Ok(JobSpec::Sweep(SweepConfig::from_json(&v["sweep"])?)),
            ["scenario"] => {
                let doc = &v["scenario"];
                // Full schema validation at the trust boundary; the
                // executor re-parses the (now known-good) document.
                deep_scenario::Scenario::from_value(doc).map_err(|e| format!("scenario: {e}"))?;
                Ok(JobSpec::Scenario(doc.clone()))
            }
            ["sleep_ms"] => {
                let ms = v
                    .get("sleep_ms")
                    .and_then(Value::as_u64)
                    .filter(|&ms| ms <= MAX_SLEEP_MS)
                    .ok_or("'sleep_ms' must be an integer <= 10000")?;
                Ok(JobSpec::SleepMs(ms))
            }
            [] => Err(
                "job must name one of 'experiment', 'sweep', 'scenario', 'sleep_ms'".to_string(),
            ),
            _ => Err(format!("job names more than one spec: {present:?}")),
        }
    }

    /// Content digest of this spec, in the cache's hex form. Pure
    /// function of the spec — the submitting client never participates.
    pub fn digest_hex(&self) -> String {
        deep_json::digest::digest_hex(&self.to_json())
    }
}

/// One full submission: fairness bucket + spec.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Fairness bucket for round-robin admission (`"anon"` when the
    /// submission does not name one).
    pub client: String,
    /// What to run.
    pub spec: JobSpec,
}

impl JobRequest {
    /// Parse a POST /jobs body.
    pub fn from_json(v: &Value) -> Result<JobRequest, String> {
        let client = match v.get("client") {
            None => "anon".to_string(),
            Some(c) => {
                let c = c.as_str().ok_or("'client' must be a string")?;
                if c.is_empty() || c.len() > 64 || !c.chars().all(|ch| ch.is_ascii_graphic()) {
                    return Err("'client' must be 1..=64 printable ASCII characters".to_string());
                }
                c.to_string()
            }
        };
        Ok(JobRequest {
            client,
            spec: JobSpec::from_json(v)?,
        })
    }

    /// JSON form (what `deep-submit` puts on the wire).
    pub fn to_json(&self) -> Value {
        let mut members = vec![("client".to_string(), Value::String(self.client.clone()))];
        if let Value::Object(kv) = self.spec.to_json() {
            members.extend(kv);
        }
        Value::Object(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_json() -> Value {
        deep_json::from_str(
            r#"{"sweep":{"seed":7,"replicas":4,"points":[
                {"work_s":500000,"n_nodes":640,"mtbf_node_s":157680000,
                 "checkpoint_s":240,"restart_s":600,"interval_s":5400}]}}"#,
        )
        .unwrap()
    }

    #[test]
    fn experiment_spec_round_trips() {
        let v = deep_json::from_str(r#"{"client":"ci","experiment":"f03b_resilience"}"#).unwrap();
        let req = JobRequest::from_json(&v).unwrap();
        assert_eq!(req.client, "ci");
        assert_eq!(req.spec, JobSpec::Experiment("f03b_resilience".into()));
        let back = JobRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn sweep_spec_round_trips_and_validates() {
        let req = JobRequest::from_json(&sweep_json()).unwrap();
        assert_eq!(req.client, "anon");
        let JobSpec::Sweep(cfg) = &req.spec else {
            panic!("expected sweep");
        };
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.replicas, 4);
        assert_eq!(cfg.points[0].n_nodes, 640);
        let back = JobRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn digest_ignores_the_client_member() {
        let a = JobRequest::from_json(
            &deep_json::from_str(r#"{"client":"alice","experiment":"f03b_resilience"}"#).unwrap(),
        )
        .unwrap();
        let b = JobRequest::from_json(
            &deep_json::from_str(r#"{"client":"bob","experiment":"f03b_resilience"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(a.spec.digest_hex(), b.spec.digest_hex());
    }

    #[test]
    fn digest_distinguishes_configs() {
        let base = JobSpec::Experiment("f03b_resilience".into());
        let other = JobSpec::Experiment("f02_evolution".into());
        assert_ne!(base.digest_hex(), other.digest_hex());
    }

    #[test]
    fn bad_submissions_are_rejected_with_reasons() {
        let cases = [
            (r#"{}"#, "must name one"),
            (r#"{"experiment":"nope"}"#, "unknown experiment"),
            (
                r#"{"experiment":"f02_evolution","sleep_ms":1}"#,
                "more than one",
            ),
            (r#"{"sleep_ms":999999}"#, "sleep_ms"),
            (r#"{"client":"","experiment":"f02_evolution"}"#, "client"),
            (
                r#"{"sweep":{"seed":1,"replicas":0,"points":[]}}"#,
                "replicas",
            ),
            (r#"{"sweep":{"seed":1,"replicas":2,"points":[]}}"#, "points"),
            (
                r#"{"sweep":{"seed":1,"replicas":2,"points":[{"work_s":0,"n_nodes":4,
                   "mtbf_node_s":1,"checkpoint_s":1,"restart_s":1,"interval_s":1}]}}"#,
                "work_s",
            ),
        ];
        for (body, want) in cases {
            let v = deep_json::from_str(body).unwrap();
            let err = JobRequest::from_json(&v).unwrap_err();
            assert!(
                err.contains(want),
                "body {body}: error {err:?} lacks {want:?}"
            );
        }
    }

    #[test]
    fn compatibility_is_seed_and_replicas() {
        let a = SweepConfig {
            seed: 7,
            replicas: 4,
            points: vec![],
        };
        let mut b = a.clone();
        assert!(a.compatible_with(&b));
        b.seed = 8;
        assert!(!a.compatible_with(&b));
        b.seed = 7;
        b.replicas = 5;
        assert!(!a.compatible_with(&b));
    }
}
