//! Hand-rolled HTTP/1.1 — exactly the slice the daemon and its client
//! need, over `std::net` only.
//!
//! Server side: [`read_request`] parses one request (with hard limits
//! on line, header, and body sizes — this faces untrusted peers),
//! [`Response`] renders one reply, and [`ChunkedWriter`] streams a
//! `Transfer-Encoding: chunked` body for the NDJSON progress
//! endpoint. Connections are keep-alive by default, as HTTP/1.1
//! specifies; `Connection: close` (or a parse error) ends them.
//!
//! Client side: [`read_response`] consumes a full reply and
//! [`ChunkedReader`] adapts a chunked body into a plain `Read` so the
//! submit client can iterate NDJSON lines as they arrive.

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request line or header line, bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per message.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path with query string intact (no percent-decoding; the API
    /// uses none).
    pub path: String,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the peer asked to end the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read one CRLF- (or LF-) terminated line, bounded by [`MAX_LINE`].
fn read_line_limited(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None) // clean EOF between requests
                } else {
                    Err(bad("truncated line"))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let s = String::from_utf8(buf).map_err(|_| bad("non-UTF-8 header line"))?;
                    return Ok(Some(s));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(bad("header line too long"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Parse one request off the wire. `Ok(None)` means the peer closed
/// the connection cleanly between requests (normal keep-alive end).
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line_limited(r)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(r)?.ok_or_else(|| bad("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = req.header("content-length") {
        let len: usize = len.parse().map_err(|_| bad("bad content-length"))?;
        if len > MAX_BODY {
            return Err(bad("body too large"));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        req.body = body;
    } else if req.header("transfer-encoding").is_some() {
        // The API never needs chunked *requests*; reject rather than
        // desync the framing.
        return Err(bad("chunked requests not supported"));
    }
    Ok(Some(req))
}

/// One reply under construction.
#[derive(Debug)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// Start a reply with the given status code.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// JSON reply: sets the body and `Content-Type`.
    pub fn json(status: u16, v: &deep_json::Value) -> Response {
        let mut resp = Response::new(status);
        resp.headers
            .push(("Content-Type".into(), "application/json".into()));
        resp.body = v.to_json_pretty().into_bytes();
        resp.body.push(b'\n');
        resp
    }

    /// Plain-text reply.
    pub fn text(status: u16, body: &str) -> Response {
        let mut resp = Response::new(status);
        resp.headers
            .push(("Content-Type".into(), "text/plain; charset=utf-8".into()));
        resp.body = body.as_bytes().to_vec();
        resp
    }

    /// Append a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Canonical reason phrase for the status codes the API uses.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serialise onto the socket with explicit framing.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(
            w,
            "Connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Streaming chunked body: send the status line + headers once, then
/// arbitrarily many chunks, then [`ChunkedWriter::finish`].
pub struct ChunkedWriter<W: Write> {
    w: W,
    finished: bool,
}

impl<W: Write> ChunkedWriter<W> {
    /// Emit the response head announcing a chunked NDJSON body.
    pub fn start(mut w: W, status: u16, content_type: &str) -> io::Result<ChunkedWriter<W>> {
        write!(
            w,
            "HTTP/1.1 {status} OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w, finished: false })
    }

    /// Send one chunk (flushed immediately — progress must not sit in
    /// a buffer).
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminate the stream with the zero-length chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.finished = true;
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// A parsed client-side reply.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Entire body (chunked bodies are de-chunked).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read the status line + headers of a reply; body handling is up to
/// the caller (fixed-length, chunked, or streamed).
pub fn read_response_head(r: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
    let line = read_line_limited(r)?.ok_or_else(|| bad("no response"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(r)?.ok_or_else(|| bad("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((status, headers))
}

/// Read one whole reply, de-chunking if needed.
pub fn read_response(r: &mut impl BufRead) -> io::Result<ClientResponse> {
    let (status, headers) = read_response_head(r)?;
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        ChunkedReader::new(r).read_to_end(&mut body)?;
    } else if let Some((_, len)) = headers.iter().find(|(k, _)| k == "content-length") {
        let len: usize = len.parse().map_err(|_| bad("bad content-length"))?;
        if len > MAX_BODY {
            return Err(bad("body too large"));
        }
        body = vec![0u8; len];
        r.read_exact(&mut body)?;
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Adapts a chunked transfer coding into a plain byte stream, chunk
/// boundaries invisible to the caller — `BufRead::read_line` on top of
/// it yields NDJSON lines as they arrive.
pub struct ChunkedReader<'a, R: BufRead> {
    r: &'a mut R,
    /// Bytes left in the current chunk; `None` before the next size
    /// line, `Some(0)` after the terminal chunk.
    remaining: Option<usize>,
    done: bool,
}

impl<'a, R: BufRead> ChunkedReader<'a, R> {
    /// Wrap a reader positioned at the first chunk-size line.
    pub fn new(r: &'a mut R) -> ChunkedReader<'a, R> {
        ChunkedReader {
            r,
            remaining: None,
            done: false,
        }
    }
}

impl<R: BufRead> Read for ChunkedReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.done || buf.is_empty() {
            return Ok(0);
        }
        let left = match self.remaining {
            Some(left) => left,
            None => {
                let line = read_line_limited(self.r)?.ok_or_else(|| bad("truncated chunk size"))?;
                let size =
                    usize::from_str_radix(line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
                if size > MAX_BODY {
                    return Err(bad("chunk too large"));
                }
                if size == 0 {
                    // Consume the trailing CRLF of the terminal chunk.
                    let _ = read_line_limited(self.r)?;
                    self.done = true;
                    return Ok(0);
                }
                self.remaining = Some(size);
                size
            }
        };
        let take = left.min(buf.len());
        self.r.read_exact(&mut buf[..take])?;
        if take == left {
            // Chunk exhausted: consume its trailing CRLF.
            let mut crlf = [0u8; 2];
            self.r.read_exact(&mut crlf)?;
            self.remaining = None;
        } else {
            self.remaining = Some(left - take);
        }
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert!(read_request(&mut Cursor::new(&b""[..])).unwrap().is_none());
    }

    #[test]
    fn oversized_and_malformed_requests_error() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 1));
        assert!(read_request(&mut Cursor::new(long.as_bytes())).is_err());
        assert!(read_request(&mut Cursor::new(&b"NOT-HTTP\r\n\r\n"[..])).is_err());
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(read_request(&mut Cursor::new(big.as_bytes())).is_err());
        assert!(read_request(&mut Cursor::new(
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..]
        ))
        .is_err());
    }

    #[test]
    fn response_round_trips_through_client_parser() {
        let v = deep_json::object([("ok", true.into())]);
        let mut wire = Vec::new();
        Response::json(202, &v)
            .header("Retry-After", "1")
            .write_to(&mut wire, true)
            .unwrap();
        let resp = read_response(&mut Cursor::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.header("retry-after"), Some("1"));
        let body = deep_json::from_slice(&resp.body).unwrap();
        assert_eq!(body["ok"].as_bool(), Some(true));
    }

    #[test]
    fn chunked_stream_round_trips() {
        let mut wire = Vec::new();
        {
            let mut cw = ChunkedWriter::start(&mut wire, 200, "application/x-ndjson").unwrap();
            cw.write_chunk(b"{\"seq\":0}\n").unwrap();
            cw.write_chunk(b"{\"seq\":1}\n{\"se").unwrap();
            cw.write_chunk(b"q\":2}\n").unwrap();
            cw.finish().unwrap();
        }
        let mut cursor = Cursor::new(&wire[..]);
        let resp = read_response(&mut cursor).unwrap();
        assert_eq!(resp.status, 200);
        let lines: Vec<&str> = std::str::from_utf8(&resp.body).unwrap().lines().collect();
        assert_eq!(lines, ["{\"seq\":0}", "{\"seq\":1}", "{\"seq\":2}"]);
    }

    #[test]
    fn chunked_reader_is_line_iterable_mid_stream() {
        // Lines split across chunk boundaries reassemble.
        let body = b"5\r\nab\ncd\r\n4\r\nef\ng\r\n2\r\nh\n\r\n0\r\n\r\n";
        let mut cursor = Cursor::new(&body[..]);
        let mut lines = Vec::new();
        let mut reader = std::io::BufReader::new(ChunkedReader::new(&mut cursor));
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            lines.push(line.trim_end().to_string());
            line.clear();
        }
        assert_eq!(lines, ["ab", "cdef", "gh"]);
    }
}
