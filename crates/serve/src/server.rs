//! HTTP front end: accept loop, request router, and graceful drain.
//!
//! One thread per connection (connections are few and long-lived —
//! this serves a CI fleet, not the internet), keep-alive per
//! HTTP/1.1, and a non-blocking accept loop so the daemon can notice
//! a termination request between connections. On SIGTERM (or
//! [`ServerHandle::begin_drain`]) the daemon stops admitting jobs
//! (503 + `Retry-After`), finishes everything already admitted, then
//! exits the accept loop.
//!
//! Routes:
//!
//! | method | path              | reply |
//! |--------|-------------------|-------|
//! | POST   | `/jobs`           | 200 (cache hit) / 202 (queued) + job JSON; 400/413/429/503 |
//! | GET    | `/jobs/<id>`      | job JSON (result inline once done) |
//! | GET    | `/jobs/<id>/events` | chunked NDJSON event stream until terminal |
//! | GET    | `/healthz`        | liveness + load gauges |
//! | GET    | `/metrics`        | plain-text counters |

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use deep_json::{object, Value};

use crate::http::{read_request, ChunkedWriter, Request, Response};
use crate::scheduler::{JobState, Rejection, Scheduler, SchedulerConfig};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_IDLE: Duration = Duration::from_millis(20);
/// Poll interval for event streams waiting on job news.
const EVENT_WAIT: Duration = Duration::from_millis(100);

/// A running daemon: the scheduler plus drain plumbing shared with
/// connection threads.
pub struct Server {
    scheduler: Arc<Scheduler>,
    draining: Arc<AtomicBool>,
    listener: TcpListener,
    /// Local address actually bound (useful with port 0).
    pub addr: std::net::SocketAddr,
}

/// Cloneable handle for controlling a server from another thread
/// (tests use this where production uses SIGTERM).
#[derive(Clone)]
pub struct ServerHandle {
    scheduler: Arc<Scheduler>,
    draining: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl ServerHandle {
    /// Stop admitting jobs; the run loop exits once admitted work is
    /// done.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.scheduler.drain();
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start the scheduler.
    pub fn bind(addr: &str, cfg: SchedulerConfig) -> io::Result<Server> {
        let scheduler = Arc::new(Scheduler::new(cfg)?);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            scheduler,
            draining: Arc::new(AtomicBool::new(false)),
            listener,
            addr,
        })
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            scheduler: Arc::clone(&self.scheduler),
            draining: Arc::clone(&self.draining),
            addr: self.addr,
        }
    }

    /// Serve until `terminate` (or a drain handle) fires, then finish
    /// admitted jobs and return. Pass `sigshim::terminate_flag()` in
    /// production; tests pass their own flag.
    pub fn run(self, terminate: &AtomicBool) -> io::Result<()> {
        loop {
            if terminate.load(Ordering::Relaxed) {
                self.draining.store(true, Ordering::Relaxed);
                self.scheduler.drain();
            }
            if self.draining.load(Ordering::Relaxed) && self.scheduler.drained() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let scheduler = Arc::clone(&self.scheduler);
                    let draining = Arc::clone(&self.draining);
                    std::thread::spawn(move || {
                        // Peer disconnects are routine, not errors.
                        let _ = serve_connection(stream, &scheduler, &draining);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_IDLE);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Workers are idle by now (drained() held); stop them. If a
        // connection thread still holds a reference, leaving workers
        // parked is safe — every job is terminal and the process is
        // about to exit anyway.
        if let Ok(s) = Arc::try_unwrap(self.scheduler) {
            s.shutdown();
        }
        Ok(())
    }
}

/// Handle one keep-alive connection until the peer closes or errors.
fn serve_connection(
    stream: TcpStream,
    scheduler: &Scheduler,
    draining: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // clean close between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed request: answer 400 and drop the
                // connection (framing may be desynchronised).
                let body = object([("error", e.to_string().as_str().into())]);
                Response::json(400, &body).write_to(&mut writer, false)?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let keep_alive = !req.wants_close();
        match route(&req, scheduler, draining) {
            Routed::Plain(resp) => resp.write_to(&mut writer, keep_alive)?,
            Routed::EventStream(id) => {
                // Streaming takes over the connection; it ends with
                // the terminal event and closes.
                stream_events(&mut writer, scheduler, id)?;
                return Ok(());
            }
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Either an ordinary response or a switch to event streaming.
enum Routed {
    Plain(Response),
    EventStream(u64),
}

fn route(req: &Request, scheduler: &Scheduler, draining: &AtomicBool) -> Routed {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let plain = |r: Response| Routed::Plain(r);
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => plain(submit(req, scheduler, draining)),
        ("GET", ["jobs", id]) => match parse_id(id).and_then(|id| scheduler.job_json(id)) {
            Some(job) => plain(Response::json(200, &job)),
            None => plain(not_found()),
        },
        ("GET", ["jobs", id, "events"]) => match parse_id(id) {
            Some(id) if scheduler.job_json(id).is_some() => Routed::EventStream(id),
            _ => plain(not_found()),
        },
        ("GET", ["healthz"]) => {
            let (queued, running, drain_flag) = scheduler.load();
            let body = object([
                ("status", "ok".into()),
                (
                    "draining",
                    (drain_flag || draining.load(Ordering::Relaxed)).into(),
                ),
                ("jobs_queued", queued.into()),
                ("jobs_running", running.into()),
            ]);
            plain(Response::json(200, &body))
        }
        ("GET", ["metrics"]) => plain(Response::text(200, &scheduler.metrics_text())),
        (_, ["jobs"]) | (_, ["jobs", ..]) | (_, ["healthz"]) | (_, ["metrics"]) => plain(
            Response::json(405, &object([("error", "method not allowed".into())])),
        ),
        _ => plain(not_found()),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}

fn not_found() -> Response {
    Response::json(404, &object([("error", "not found".into())]))
}

fn submit(req: &Request, scheduler: &Scheduler, draining: &AtomicBool) -> Response {
    if draining.load(Ordering::Relaxed) {
        return Response::json(503, &object([("error", "draining for shutdown".into())]))
            .header("Retry-After", "5");
    }
    let body = match deep_json::from_slice(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::json(400, &object([("error", e.to_string().as_str().into())])),
    };
    let job_req = match crate::protocol::JobRequest::from_json(&body) {
        Ok(r) => r,
        Err(e) => return Response::json(400, &object([("error", e.as_str().into())])),
    };
    match scheduler.submit(job_req) {
        Ok(admitted) => match scheduler.job_json(admitted.job_id) {
            // 200 when the answer is already in hand, 202 when queued.
            Some(job) => Response::json(if admitted.cached { 200 } else { 202 }, &job),
            None => Response::json(
                500,
                &object([("error", "job record vanished after admission".into())]),
            ),
        },
        Err(Rejection::QueueFull { retry_after_s }) => {
            Response::json(429, &object([("error", "queue full".into())]))
                .header("Retry-After", &retry_after_s.to_string())
        }
        Err(Rejection::Draining) => {
            Response::json(503, &object([("error", "draining for shutdown".into())]))
                .header("Retry-After", "5")
        }
    }
}

/// Stream a job's events as chunked NDJSON until it is terminal.
fn stream_events<W: Write>(writer: W, scheduler: &Scheduler, id: u64) -> io::Result<()> {
    let mut out = ChunkedWriter::start(writer, 200, "application/x-ndjson")?;
    let mut seen = 0usize;
    while let Some((fresh, terminal)) = scheduler.events_after(id, seen, EVENT_WAIT) {
        if !fresh.is_empty() {
            let mut payload = String::new();
            for ev in &fresh {
                payload.push_str(&ev.to_json());
                payload.push('\n');
            }
            seen += fresh.len();
            out.write_chunk(payload.as_bytes())?;
        }
        if terminal && seen > 0 {
            break;
        }
    }
    out.finish()
}

/// Convenience for bins and tests: a terminal state string from job
/// JSON.
pub fn job_state(job: &Value) -> Option<JobState> {
    match job["state"].as_str()? {
        "queued" => Some(JobState::Queued),
        "running" => Some(JobState::Running),
        "done" => Some(JobState::Done),
        "failed" => Some(JobState::Failed),
        _ => None,
    }
}
