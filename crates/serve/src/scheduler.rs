//! Job scheduler: bounded admission, per-client round-robin fairness,
//! compatible-sweep batching, and resmgr-style thread apportionment.
//!
//! The daemon is a tiny cluster in itself, so it reuses the paper's
//! resource-management ideas at host scale:
//!
//! * **Admission** is a bounded queue. A full queue rejects with
//!   [`Rejection::QueueFull`] (HTTP 429) and a drain-mode daemon with
//!   [`Rejection::Draining`] (HTTP 503) — explicit backpressure, never
//!   unbounded buffering.
//! * **Fairness** is round-robin over *clients*, not jobs: each client
//!   has its own FIFO and workers take the front job of the next
//!   client in rotation, so one tenant flooding the queue cannot
//!   starve another (the resmgr's fair time-slicing, one level up).
//! * **Batching**: compatible sweep jobs (same seed + replicas — see
//!   [`SweepConfig::compatible_with`]) claimed together merge into a
//!   single [`par_sweep`] invocation. Per-point results are pure
//!   functions of the point, so batching is invisible in the results
//!   and only visible in throughput.
//! * **Apportionment**: each running batch gets a slice of the
//!   machine's threads from [`deep_resmgr::assign::dynamic_shares`] —
//!   the booster's dynamic assignment policy deciding pool widths
//!   instead of booster nodes.
//! * **Memoisation**: results of cacheable specs land in a
//!   [`deep_json::cache::ResultCache`] keyed by the canonical config
//!   digest; a resubmission is served from memory without touching a
//!   worker.
//!
//! Wall-clock is used only for service-time *metadata* (never inside
//! job execution or digests), which is why `crates/serve` sits in the
//! same lint scope class as the bench binaries.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use deep_bench::sweep::par_sweep;
use deep_core::resilience::mean_efficiency;
use deep_json::cache::ResultCache;
use deep_json::{object, Value};
use deep_resmgr::assign::dynamic_shares;

use crate::protocol::{JobRequest, JobSpec, SweepPoint};

/// Sweep points evaluated between two progress events.
const PROGRESS_CHUNK: usize = 64;
/// Most sweep jobs merged into one batch.
const MAX_BATCH_JOBS: usize = 8;

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is full; retry after `retry_after_s`.
    QueueFull {
        /// Suggested client back-off, seconds.
        retry_after_s: u32,
    },
    /// The daemon is draining for shutdown and admits nothing.
    Draining,
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing (possibly inside a merged batch).
    Running,
    /// Finished successfully; `result` is set.
    Done,
    /// Execution panicked or failed; `error` is set.
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// True once the job can no longer change.
    pub fn terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// One admitted job.
struct Job {
    id: u64,
    client: String,
    spec: JobSpec,
    digest_hex: Option<String>,
    state: JobState,
    cache_hit: bool,
    /// Other jobs merged into the same batch (0 = ran alone).
    batched_with: u32,
    /// Pool threads the batch executed on (0 until started).
    threads: u32,
    submitted_at: Instant,
    service_micros: Option<u64>,
    result: Option<Value>,
    error: Option<String>,
    events: Vec<Value>,
}

impl Job {
    fn push_event(&mut self, state: &str, extra: Vec<(&str, Value)>) {
        let mut members = vec![
            ("seq".to_string(), Value::from(self.events.len() as u64)),
            ("job".to_string(), Value::from(self.id)),
            ("state".to_string(), Value::from(state)),
        ];
        for (k, v) in extra {
            members.push((k.to_string(), v));
        }
        self.events.push(Value::Object(members));
    }

    fn to_json(&self) -> Value {
        object([
            ("id", self.id.into()),
            ("client", self.client.as_str().into()),
            ("state", self.state.as_str().into()),
            ("spec", self.spec.to_json()),
            (
                "digest",
                self.digest_hex
                    .as_ref()
                    .map_or(Value::Null, |d| d.as_str().into()),
            ),
            ("cache_hit", self.cache_hit.into()),
            ("batched_with", self.batched_with.into()),
            ("threads", self.threads.into()),
            (
                "service_micros",
                self.service_micros.map_or(Value::Null, Value::from),
            ),
            ("result", self.result.clone().unwrap_or(Value::Null)),
            (
                "error",
                self.error
                    .as_ref()
                    .map_or(Value::Null, |e| e.as_str().into()),
            ),
        ])
    }
}

/// Monotonic counters surfaced on `/metrics`.
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cache_hits: u64,
    rejected_full: u64,
    rejected_drain: u64,
    batches: u64,
    batched_jobs: u64,
}

struct State {
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
    /// Per-client FIFO of queued job ids.
    queues: BTreeMap<String, VecDeque<u64>>,
    /// Round-robin rotation of client names.
    rotation: VecDeque<String>,
    queued: usize,
    running: usize,
    /// `(lead job id, thread demand)` of every executing batch.
    running_demands: Vec<(u64, u32)>,
    draining: bool,
    shutdown: bool,
    cache: ResultCache,
    counters: Counters,
}

struct Inner {
    state: Mutex<State>,
    /// Workers park here while the queue is empty.
    work: Condvar,
    /// Status watchers (event streams, drain) park here.
    update: Condvar,
    /// Threads the whole daemon may use for simulation.
    pool_threads: u32,
    /// Most jobs allowed to wait in the queue.
    queue_bound: usize,
}

/// What `submit` tells the HTTP layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admitted {
    /// The new job's id.
    pub job_id: u64,
    /// True when the result came straight from the cache (the job is
    /// already terminal).
    pub cached: bool,
}

/// The scheduler handle: submission, inspection, drain.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// Everything `Scheduler::new` needs to know.
pub struct SchedulerConfig {
    /// Threads available for simulation work (≥ 1).
    pub pool_threads: u32,
    /// Bounded-queue depth; submissions beyond it get 429.
    pub queue_bound: usize,
    /// In-memory result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Optional on-disk spill directory for the cache.
    pub cache_dir: Option<PathBuf>,
    /// Worker threads draining the queue (batches run concurrently).
    pub workers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            pool_threads: 2,
            queue_bound: 32,
            cache_capacity: 256,
            cache_dir: None,
            workers: 2,
        }
    }
}

impl Scheduler {
    /// Start the scheduler and its worker threads.
    pub fn new(cfg: SchedulerConfig) -> std::io::Result<Scheduler> {
        let cache = match &cfg.cache_dir {
            Some(dir) => ResultCache::with_spill_dir(cfg.cache_capacity, dir)?,
            None => ResultCache::new(cfg.cache_capacity),
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                next_id: 1,
                jobs: BTreeMap::new(),
                queues: BTreeMap::new(),
                rotation: VecDeque::new(),
                queued: 0,
                running: 0,
                running_demands: Vec::new(),
                draining: false,
                shutdown: false,
                cache,
                counters: Counters::default(),
            }),
            work: Condvar::new(),
            update: Condvar::new(),
            pool_threads: cfg.pool_threads.max(1),
            queue_bound: cfg.queue_bound.max(1),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("deep-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Scheduler { inner, workers })
    }

    /// Admit (or reject) one submission. Cache hits complete inline
    /// without occupying a worker.
    pub fn submit(&self, req: JobRequest) -> Result<Admitted, Rejection> {
        let started = Instant::now();
        let digest_key = req.spec.cacheable().then(|| {
            let spec_json = req.spec.to_json();
            (
                deep_json::digest::digest(&spec_json),
                deep_json::digest::digest_hex(&spec_json),
            )
        });
        let mut st = self.inner.state.lock().unwrap();
        if st.draining || st.shutdown {
            st.counters.rejected_drain += 1;
            return Err(Rejection::Draining);
        }
        // Serve from cache before consuming queue capacity: a hit is
        // not load, so it must not be subject to backpressure.
        if let Some((key, hex)) = &digest_key {
            if let Some(result) = st.cache.get(*key) {
                let id = st.next_id;
                st.next_id += 1;
                let mut job = Job {
                    id,
                    client: req.client,
                    spec: req.spec,
                    digest_hex: Some(hex.clone()),
                    state: JobState::Done,
                    cache_hit: true,
                    batched_with: 0,
                    threads: 0,
                    submitted_at: started,
                    service_micros: Some(started.elapsed().as_micros() as u64),
                    result: Some(result),
                    error: None,
                    events: Vec::new(),
                };
                job.push_event("queued", vec![]);
                job.push_event(
                    "done",
                    vec![
                        ("cache_hit", true.into()),
                        (
                            "service_micros",
                            Value::from(job.service_micros.unwrap_or(0)),
                        ),
                    ],
                );
                st.jobs.insert(id, job);
                st.counters.submitted += 1;
                st.counters.completed += 1;
                st.counters.cache_hits += 1;
                self.inner.update.notify_all();
                return Ok(Admitted {
                    job_id: id,
                    cached: true,
                });
            }
        }
        if st.queued >= self.inner.queue_bound {
            st.counters.rejected_full += 1;
            return Err(Rejection::QueueFull { retry_after_s: 1 });
        }
        let id = st.next_id;
        st.next_id += 1;
        let client = req.client.clone();
        let mut job = Job {
            id,
            client: client.clone(),
            spec: req.spec,
            digest_hex: digest_key.map(|(_, hex)| hex),
            state: JobState::Queued,
            cache_hit: false,
            batched_with: 0,
            threads: 0,
            submitted_at: started,
            service_micros: None,
            result: None,
            error: None,
            events: Vec::new(),
        };
        job.push_event("queued", vec![]);
        st.jobs.insert(id, job);
        st.counters.submitted += 1;
        st.queued += 1;
        if !st.queues.contains_key(&client) {
            st.rotation.push_back(client.clone());
        }
        st.queues.entry(client).or_default().push_back(id);
        self.inner.work.notify_one();
        self.inner.update.notify_all();
        Ok(Admitted {
            job_id: id,
            cached: false,
        })
    }

    /// Full JSON status of one job; `None` for unknown ids.
    pub fn job_json(&self, id: u64) -> Option<Value> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).map(Job::to_json)
    }

    /// Events of job `id` with `seq >= after`, plus whether the job is
    /// terminal. Blocks up to `wait` for news when there is none yet.
    pub fn events_after(
        &self,
        id: u64,
        after: usize,
        wait: Duration,
    ) -> Option<(Vec<Value>, bool)> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            let job = st.jobs.get(&id)?;
            let terminal = job.state.terminal();
            if job.events.len() > after || terminal || wait.is_zero() {
                let fresh = job.events.iter().skip(after).cloned().collect();
                return Some((fresh, terminal));
            }
            let (guard, timeout) = self.inner.update.wait_timeout(st, wait).unwrap();
            st = guard;
            if timeout.timed_out() {
                let job = st.jobs.get(&id)?;
                let fresh = job.events.iter().skip(after).cloned().collect();
                return Some((fresh, job.state.terminal()));
            }
        }
    }

    /// Queue/run gauges: `(queued, running, draining)`.
    pub fn load(&self) -> (usize, usize, bool) {
        let st = self.inner.state.lock().unwrap();
        (st.queued, st.running, st.draining)
    }

    /// Render the `/metrics` exposition text.
    pub fn metrics_text(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        let c = st.counters;
        let cache = st.cache.stats();
        let mut out = String::new();
        let mut put = |name: &str, v: u64| {
            out.push_str(&format!("deep_serve_{name} {v}\n"));
        };
        put("jobs_submitted_total", c.submitted);
        put("jobs_completed_total", c.completed);
        put("jobs_failed_total", c.failed);
        put("jobs_cache_hits_total", c.cache_hits);
        put("jobs_rejected_queue_full_total", c.rejected_full);
        put("jobs_rejected_draining_total", c.rejected_drain);
        put("batches_total", c.batches);
        put("batched_jobs_total", c.batched_jobs);
        put("queue_depth", st.queued as u64);
        put("jobs_running", st.running as u64);
        put("draining", u64::from(st.draining));
        put("cache_entries", st.cache.len() as u64);
        put("cache_memory_hits_total", cache.hits);
        put("cache_disk_hits_total", cache.disk_hits);
        put("cache_misses_total", cache.misses);
        put("cache_evictions_total", cache.evictions);
        out
    }

    /// Stop admitting jobs; everything already admitted still runs.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.draining = true;
        self.inner.work.notify_all();
        self.inner.update.notify_all();
    }

    /// True once draining and no queued or running work remains.
    pub fn drained(&self) -> bool {
        let st = self.inner.state.lock().unwrap();
        st.draining && st.queued == 0 && st.running == 0
    }

    /// Block until every admitted job reached a terminal state (used
    /// by SIGTERM handling after [`Scheduler::drain`]).
    pub fn wait_idle(&self) {
        let mut st = self.inner.state.lock().unwrap();
        while st.queued > 0 || st.running > 0 {
            st = self.inner.update.wait(st).unwrap();
        }
    }

    /// Drain, wait for in-flight work, stop the workers, join them.
    pub fn shutdown(mut self) {
        self.drain();
        self.wait_idle();
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
            self.inner.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One unit of worker execution: the lead job plus any sweep jobs
/// merged with it.
struct Batch {
    /// `(job id, points)` — non-sweep leads carry an empty point list.
    members: Vec<(u64, Vec<SweepPoint>)>,
    lead_spec: JobSpec,
    /// Shared sweep seed/replicas (sweep batches only).
    seed: u64,
    replicas: u32,
    /// Pool threads granted by the apportionment policy.
    threads: u32,
}

fn worker_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(batch) = claim_batch(inner, &mut st) {
                    break batch;
                }
                st = inner.work.wait(st).unwrap();
            }
        };
        execute_batch(inner, batch);
    }
}

/// Take the next batch off the queues: round-robin over clients for
/// the lead job, then merge compatible queued sweeps (any client —
/// merging shortens everyone's wait, so it does not undercut
/// fairness).
fn claim_batch(inner: &Inner, st: &mut State) -> Option<Batch> {
    // Rotate to the next client that still has queued work.
    let lead_id = loop {
        let client = st.rotation.pop_front()?;
        match st.queues.get_mut(&client).and_then(VecDeque::pop_front) {
            Some(id) => {
                if st.queues.get(&client).is_some_and(|q| q.is_empty()) {
                    st.queues.remove(&client);
                } else {
                    st.rotation.push_back(client);
                }
                break id;
            }
            None => {
                // Stale rotation entry; drop it and keep looking.
                st.queues.remove(&client);
            }
        }
    };
    // A queued id with no job record is an admission bug; skip the
    // claim rather than abort every worker behind this mutex.
    let lead_spec = st.jobs.get(&lead_id)?.spec.clone();
    let mut members = Vec::new();
    let (seed, replicas) = match &lead_spec {
        JobSpec::Sweep(cfg) => {
            members.push((lead_id, cfg.points.clone()));
            (cfg.seed, cfg.replicas)
        }
        _ => {
            members.push((lead_id, Vec::new()));
            (0, 0)
        }
    };
    // Merge: claim other queued sweeps with the same RNG configuration.
    if let JobSpec::Sweep(lead_cfg) = &lead_spec {
        let mut claimed: Vec<(String, u64)> = Vec::new();
        'scan: for (client, q) in st.queues.iter() {
            for &id in q.iter() {
                if members.len() >= MAX_BATCH_JOBS {
                    break 'scan;
                }
                if let Some(JobSpec::Sweep(cfg)) = st.jobs.get(&id).map(|j| &j.spec) {
                    if lead_cfg.compatible_with(cfg) {
                        claimed.push((client.clone(), id));
                        members.push((id, cfg.points.clone()));
                    }
                }
            }
        }
        for (client, id) in claimed {
            if let Some(q) = st.queues.get_mut(&client) {
                q.retain(|&j| j != id);
                if q.is_empty() {
                    st.queues.remove(&client);
                    st.rotation.retain(|c| c != &client);
                }
            }
        }
    }

    // Apportion pool threads across the batches now running, via the
    // booster-assignment policy. Our demand is the work width; clamp
    // the grant to ≥ 1 so a saturated machine degrades to time-slicing
    // instead of starvation.
    let demand = match &lead_spec {
        JobSpec::Sweep(_) => {
            let points: usize = members.iter().map(|(_, p)| p.len()).sum();
            (points as u32).clamp(1, inner.pool_threads)
        }
        JobSpec::Experiment(_) => inner.pool_threads,
        // Scenario sweeps parallelise across their points with the
        // batch's pool, like experiments.
        JobSpec::Scenario(_) => inner.pool_threads,
        JobSpec::SleepMs(_) => 1,
    };
    let mut demands: Vec<u32> = st.running_demands.iter().map(|&(_, d)| d).collect();
    demands.push(demand);
    let threads = dynamic_shares(inner.pool_threads, &demands)
        .pop()
        .unwrap_or(1)
        .max(1);
    st.running_demands.push((lead_id, demand));

    let batch_size = members.len();
    for &(id, _) in &members {
        let Some(job) = st.jobs.get_mut(&id) else {
            continue;
        };
        st.queued -= 1;
        st.running += 1;
        job.state = JobState::Running;
        job.batched_with = (batch_size - 1) as u32;
        job.threads = threads;
        job.push_event(
            "started",
            vec![
                ("batched_with", ((batch_size - 1) as u64).into()),
                ("threads", threads.into()),
            ],
        );
    }
    if batch_size > 1 {
        st.counters.batched_jobs += batch_size as u64;
    }
    st.counters.batches += 1;
    inner.update.notify_all();
    Some(Batch {
        members,
        lead_spec,
        seed,
        replicas,
        threads,
    })
}

fn execute_batch(inner: &Inner, batch: Batch) {
    match &batch.lead_spec {
        JobSpec::Sweep(_) => execute_sweep_batch(inner, &batch),
        JobSpec::Experiment(name) => {
            let id = batch.members[0].0;
            let threads = batch.threads;
            let name = name.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads as usize)
                    .build()
                    .expect("pool construction cannot fail for small widths");
                pool.install(|| deep_bench::experiments::run_to_string(&name))
            }));
            match outcome {
                Ok(Some(output)) => {
                    let result = object([
                        ("experiment", name.as_str().into()),
                        ("output", output.into()),
                    ]);
                    finish_job(inner, id, Ok(result));
                }
                Ok(None) => {
                    finish_job(inner, id, Err(format!("unknown experiment '{name}'")));
                }
                Err(_) => {
                    finish_job(inner, id, Err(format!("experiment '{name}' panicked")));
                }
            }
        }
        JobSpec::Scenario(doc) => {
            let id = batch.members[0].0;
            let threads = batch.threads;
            let doc = doc.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Admission already validated the document; re-parse
                // to obtain the typed form (cheap next to evaluation).
                deep_scenario::Scenario::from_value(&doc).map(|sc| {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads as usize)
                        .build()
                        .expect("pool construction cannot fail for small widths");
                    pool.install(|| deep_scenario::execute(&sc))
                })
            }));
            match outcome {
                Ok(Ok(result)) => finish_job(inner, id, Ok(result)),
                Ok(Err(e)) => finish_job(inner, id, Err(format!("scenario: {e}"))),
                Err(_) => finish_job(inner, id, Err("scenario evaluation panicked".to_string())),
            }
        }
        JobSpec::SleepMs(ms) => {
            let id = batch.members[0].0;
            std::thread::sleep(Duration::from_millis(*ms));
            finish_job(inner, id, Ok(object([("slept_ms", (*ms).into())])));
        }
    }
    // This batch no longer holds its thread share.
    let mut st = inner.state.lock().unwrap();
    let lead = batch.members[0].0;
    st.running_demands.retain(|&(id, _)| id != lead);
}

/// Evaluate a merged sweep batch: one flat point list, one pool,
/// chunked for progress events. Each point is a pure function of
/// `(params, interval, seed, replicas)`, so neither merging nor
/// chunking can change any result.
fn execute_sweep_batch(inner: &Inner, batch: &Batch) {
    let flat: Vec<(usize, SweepPoint)> = batch
        .members
        .iter()
        .enumerate()
        .flat_map(|(m, (_, points))| points.iter().map(move |&p| (m, p)))
        .collect();
    let totals: Vec<usize> = batch.members.iter().map(|(_, p)| p.len()).collect();
    let seed = batch.seed;
    let replicas = batch.replicas;
    let threads = batch.threads;

    let pool = match catch_unwind(AssertUnwindSafe(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads as usize)
            .build()
            .expect("pool construction cannot fail for small widths")
    })) {
        Ok(pool) => pool,
        Err(_) => {
            for &(id, _) in &batch.members {
                finish_job(inner, id, Err("worker pool construction panicked".into()));
            }
            return;
        }
    };

    // Per-member accumulators, filled chunk by chunk in point order.
    let mut per_member: Vec<Vec<Value>> = totals.iter().map(|&n| Vec::with_capacity(n)).collect();
    let mut done: Vec<usize> = vec![0; batch.members.len()];
    let mut failed = false;
    for chunk in flat.chunks(PROGRESS_CHUNK) {
        let evaluated = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                par_sweep(chunk, |_, &(_, point)| {
                    let mean = mean_efficiency(&point.params(), point.interval_s, seed, replicas);
                    (mean.efficiency, mean.truncated_runs)
                })
            })
        }));
        let Ok(results) = evaluated else {
            failed = true;
            break;
        };
        let mut st = inner.state.lock().unwrap();
        for (&(member, _), (eff, trunc)) in chunk.iter().zip(results) {
            per_member[member].push(object([
                ("efficiency", eff.into()),
                ("truncated_runs", trunc.into()),
            ]));
            done[member] += 1;
        }
        for (m, &(id, _)) in batch.members.iter().enumerate() {
            if done[m] > 0 && done[m] < totals[m] {
                let Some(job) = st.jobs.get_mut(&id) else {
                    continue;
                };
                job.push_event(
                    "progress",
                    vec![
                        ("done", (done[m] as u64).into()),
                        ("total", (totals[m] as u64).into()),
                    ],
                );
            }
        }
        inner.update.notify_all();
        drop(st);
        // Members whose points are all evaluated finish immediately —
        // they do not wait for the rest of the batch.
        for (m, &(id, _)) in batch.members.iter().enumerate() {
            if done[m] == totals[m] && !per_member[m].is_empty() {
                let points = std::mem::take(&mut per_member[m]);
                finish_job(inner, id, Ok(object([("points", Value::Array(points))])));
            }
        }
    }
    if failed {
        for (m, &(id, _)) in batch.members.iter().enumerate() {
            if done[m] < totals[m] || !per_member[m].is_empty() {
                finish_job(inner, id, Err("sweep evaluation panicked".into()));
            }
        }
    }
}

/// Record a terminal state, cache the result, and wake watchers.
fn finish_job(inner: &Inner, id: u64, outcome: Result<Value, String>) {
    let mut st = inner.state.lock().unwrap();
    // Finishing an id with no job record is a bookkeeping bug; drop the
    // result rather than abort the worker that holds the state mutex.
    let Some(job) = st.jobs.get_mut(&id) else {
        return;
    };
    let micros = job.submitted_at.elapsed().as_micros() as u64;
    job.service_micros = Some(micros);
    let cache_insert = match outcome {
        Ok(result) => {
            job.state = JobState::Done;
            job.result = Some(result.clone());
            job.push_event(
                "done",
                vec![
                    ("cache_hit", false.into()),
                    ("service_micros", micros.into()),
                ],
            );
            job.spec.cacheable().then(|| {
                let key = deep_json::digest::digest(&job.spec.to_json());
                (key, result)
            })
        }
        Err(error) => {
            job.state = JobState::Failed;
            job.error = Some(error.clone());
            job.push_event("failed", vec![("error", error.into())]);
            None
        }
    };
    let succeeded = job.state == JobState::Done;
    st.running -= 1;
    if succeeded {
        st.counters.completed += 1;
    } else {
        st.counters.failed += 1;
    }
    if let Some((key, result)) = cache_insert {
        // Spill failures must not fail the job; the in-memory insert
        // always stands.
        let _ = st.cache.insert(key, result);
    }
    inner.update.notify_all();
    inner.work.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment(client: &str, name: &str) -> JobRequest {
        JobRequest {
            client: client.to_string(),
            spec: JobSpec::Experiment(name.to_string()),
        }
    }

    fn wait_terminal(s: &Scheduler, id: u64) -> Value {
        let mut seen = 0;
        loop {
            let (fresh, terminal) = s
                .events_after(id, seen, Duration::from_millis(200))
                .unwrap();
            seen += fresh.len();
            if terminal {
                return s.job_json(id).unwrap();
            }
        }
    }

    #[test]
    fn runs_an_experiment_and_caches_the_resubmission() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 1,
            ..SchedulerConfig::default()
        })
        .unwrap();
        let a = s.submit(experiment("t", "f02_evolution")).unwrap();
        assert!(!a.cached);
        let done = wait_terminal(&s, a.job_id);
        assert_eq!(done["state"], "done");
        assert!(done["result"]["output"]
            .as_str()
            .unwrap()
            .contains("### F02"));
        // Resubmission: cache hit, terminal immediately, same bytes.
        let b = s.submit(experiment("other", "f02_evolution")).unwrap();
        assert!(b.cached);
        let hit = s.job_json(b.job_id).unwrap();
        assert_eq!(hit["state"], "done");
        assert_eq!(hit["cache_hit"].as_bool(), Some(true));
        assert_eq!(
            hit["result"].to_json(),
            done["result"].to_json(),
            "cache hit must be byte-identical"
        );
        s.shutdown();
    }

    #[test]
    fn queue_bound_rejects_with_retry_after() {
        let s = Scheduler::new(SchedulerConfig {
            queue_bound: 2,
            workers: 1,
            ..SchedulerConfig::default()
        })
        .unwrap();
        // One slow job occupies the worker; fill the queue behind it.
        let _running = s
            .submit(JobRequest {
                client: "t".into(),
                spec: JobSpec::SleepMs(300),
            })
            .unwrap();
        let mut admitted = 0;
        let mut rejected = None;
        for _ in 0..8 {
            match s.submit(JobRequest {
                client: "t".into(),
                spec: JobSpec::SleepMs(1),
            }) {
                Ok(_) => admitted += 1,
                Err(r) => {
                    rejected = Some(r);
                    break;
                }
            }
        }
        assert!(admitted <= 2, "bound 2 admitted {admitted}");
        assert_eq!(rejected, Some(Rejection::QueueFull { retry_after_s: 1 }));
        s.shutdown();
    }

    #[test]
    fn drain_rejects_new_work_but_finishes_admitted_work() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 1,
            ..SchedulerConfig::default()
        })
        .unwrap();
        let a = s.submit(experiment("t", "f02_evolution")).unwrap();
        s.drain();
        assert_eq!(
            s.submit(experiment("t", "f02_evolution")),
            Err(Rejection::Draining)
        );
        s.wait_idle();
        assert_eq!(s.job_json(a.job_id).unwrap()["state"], "done");
        assert!(s.drained());
        s.shutdown();
    }

    #[test]
    fn round_robin_interleaves_clients() {
        // One worker, one greedy client with many jobs, one modest
        // client with one job submitted after: the modest client's job
        // must run second, not last.
        let s = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_bound: 16,
            ..SchedulerConfig::default()
        })
        .unwrap();
        // Park the worker so submissions below queue deterministically.
        s.submit(JobRequest {
            client: "warm".into(),
            spec: JobSpec::SleepMs(200),
        })
        .unwrap();
        let greedy: Vec<u64> = (0..3)
            .map(|_| {
                s.submit(JobRequest {
                    client: "greedy".into(),
                    spec: JobSpec::SleepMs(1),
                })
                .unwrap()
                .job_id
            })
            .collect();
        let modest = s
            .submit(JobRequest {
                client: "modest".into(),
                spec: JobSpec::SleepMs(1),
            })
            .unwrap()
            .job_id;
        for id in greedy.iter().chain([&modest]) {
            wait_terminal(&s, *id);
        }
        let finish_micros = |id: u64| {
            s.job_json(id).unwrap()["service_micros"]
                .as_u64()
                .expect("terminal job has service time")
        };
        // The modest job (submitted last) must finish before greedy's
        // second and third jobs: round-robin, not FIFO.
        assert!(
            finish_micros(modest) < finish_micros(greedy[2]),
            "round-robin must not let one client monopolise the worker"
        );
        s.shutdown();
    }

    #[test]
    fn compatible_sweeps_batch_and_results_match_direct_evaluation() {
        let point = SweepPoint {
            work_s: 10_000.0,
            n_nodes: 640,
            mtbf_node_s: 5.0 * 365.0 * 86_400.0,
            checkpoint_s: 120.0,
            restart_s: 300.0,
            interval_s: 3600.0,
        };
        let mut p2 = point;
        p2.interval_s = 1800.0;
        let sweep = |points: Vec<SweepPoint>| JobRequest {
            client: "t".into(),
            spec: JobSpec::Sweep(crate::protocol::SweepConfig {
                seed: 7,
                replicas: 3,
                points,
            }),
        };
        let s = Scheduler::new(SchedulerConfig {
            workers: 1,
            ..SchedulerConfig::default()
        })
        .unwrap();
        // Park the worker so both sweeps are queued simultaneously and
        // the claim merges them into one batch.
        s.submit(JobRequest {
            client: "warm".into(),
            spec: JobSpec::SleepMs(200),
        })
        .unwrap();
        let a = s.submit(sweep(vec![point])).unwrap().job_id;
        let b = s.submit(sweep(vec![p2])).unwrap().job_id;
        let ja = wait_terminal(&s, a);
        let jb = wait_terminal(&s, b);
        assert_eq!(ja["batched_with"].as_u64(), Some(1), "sweeps must merge");
        assert_eq!(jb["batched_with"].as_u64(), Some(1));
        // Batched results must equal direct evaluation bit-for-bit.
        for (j, pt) in [(&ja, &point), (&jb, &p2)] {
            let direct = mean_efficiency(&pt.params(), pt.interval_s, 7, 3);
            assert_eq!(
                j["result"]["points"][0]["efficiency"].as_f64().unwrap(),
                direct.efficiency,
                "batching changed a result"
            );
        }
        s.shutdown();
    }

    #[test]
    fn metrics_expose_the_counters() {
        let s = Scheduler::new(SchedulerConfig::default()).unwrap();
        let a = s.submit(experiment("t", "f02_evolution")).unwrap();
        wait_terminal(&s, a.job_id);
        s.submit(experiment("t", "f02_evolution")).unwrap();
        let text = s.metrics_text();
        assert!(text.contains("deep_serve_jobs_submitted_total 2"), "{text}");
        assert!(
            text.contains("deep_serve_jobs_cache_hits_total 1"),
            "{text}"
        );
        s.shutdown();
    }
}
