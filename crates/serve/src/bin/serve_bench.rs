//! `serve_bench`: measure daemon throughput, cached vs uncached.
//!
//! Starts an in-process `deep-serve` on a loopback port, submits a
//! batch of distinct sweep jobs over real HTTP (cold: every job
//! simulates), then resubmits the identical bodies (warm: every job
//! is a cache hit), and prints a JSON `serve` section for
//! BENCH_engine.json:
//!
//! ```json
//! {"serve": {"jobs": 16, "uncached_jobs_per_s": …,
//!            "cached_jobs_per_s": …, "cache_speedup": …,
//!            "cached_service_micros_max": …}}
//! ```
//!
//! Wall-clock here is measurement, not simulation — the numbers vary
//! run to run; the *results* of the jobs do not.

#![forbid(unsafe_code)]

use std::sync::atomic::AtomicBool;
use std::time::Instant;

use deep_serve::client::ServeClient;
use deep_serve::scheduler::SchedulerConfig;
use deep_serve::server::Server;

const JOBS: usize = 16;

fn body(i: usize) -> String {
    // Distinct interval per job → distinct digest → no accidental
    // warm hits during the cold phase.
    format!(
        r#"{{"client":"bench","sweep":{{"seed":7,"replicas":2,"points":[
            {{"work_s":5000,"n_nodes":640,"mtbf_node_s":157680000,
              "checkpoint_s":120,"restart_s":300,"interval_s":{}}}]}}}}"#,
        600 + i * 60
    )
}

fn main() {
    let server = Server::bind(
        "127.0.0.1:0",
        SchedulerConfig {
            pool_threads: rayon::current_num_threads() as u32,
            queue_bound: JOBS * 2,
            ..SchedulerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("serve_bench: bind: {e}");
        std::process::exit(1);
    });
    let addr = server.addr.to_string();
    let handle = server.handle();
    static NEVER: AtomicBool = AtomicBool::new(false);
    let daemon = std::thread::spawn(move || server.run(&NEVER));

    let mut client = ServeClient::connect(&addr).expect("connect");

    let run_phase = |client: &mut ServeClient| -> (f64, u64) {
        let t0 = Instant::now();
        let mut max_service = 0u64;
        for i in 0..JOBS {
            let job = client.submit_and_wait(&body(i), 50).expect("job completes");
            assert_eq!(job["state"].as_str(), Some("done"), "{}", job.to_json());
            max_service = max_service.max(job["service_micros"].as_u64().unwrap_or(0));
        }
        (t0.elapsed().as_secs_f64(), max_service)
    };

    let (cold_s, _) = run_phase(&mut client);
    let (warm_s, warm_service_max) = run_phase(&mut client);

    // Sanity: the warm phase must actually have hit the cache.
    let metrics = client.metrics().expect("metrics");
    let hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("deep_serve_jobs_cache_hits_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    assert!(hits >= JOBS as u64, "expected warm cache hits, got {hits}");

    handle.begin_drain();
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");

    let uncached_rate = JOBS as f64 / cold_s.max(1e-9);
    let cached_rate = JOBS as f64 / warm_s.max(1e-9);
    println!("{{");
    println!("  \"serve\": {{");
    println!("    \"jobs\": {JOBS},");
    println!("    \"uncached_jobs_per_s\": {uncached_rate:.2},");
    println!("    \"cached_jobs_per_s\": {cached_rate:.2},");
    println!(
        "    \"cache_speedup\": {:.2},",
        cached_rate / uncached_rate.max(1e-9)
    );
    println!("    \"cached_service_micros_max\": {warm_service_max}");
    println!("  }}");
    println!("}}");
}
