//! `deep-submit`: command-line client for a `deep-serve` daemon.
//!
//! ```text
//! deep-submit --addr HOST:PORT [--client NAME] [--retries N]
//!             (--experiment NAME | --sweep-file PATH | --scenario PATH | --sleep-ms N)
//!             [--watch] [--output-only]
//! ```
//!
//! * `--experiment`  — submit a registered experiment by name.
//! * `--sweep-file`  — submit the JSON submission body in PATH
//!   verbatim (explicit sweep configs, or anything the API accepts).
//! * `--scenario`    — parse the TOML scenario file in PATH and
//!   submit it as a `{"scenario": ...}` job (validated locally first,
//!   so schema errors surface before any network traffic).
//! * `--sleep-ms`    — submit a do-nothing job (ops drills).
//! * `--client`      — fairness bucket (default `anon`).
//! * `--retries`     — 429/503 back-off attempts before giving up
//!   (default 10; honours `Retry-After`).
//! * `--watch`       — stream NDJSON progress events to stderr while
//!   the job runs.
//! * `--output-only` — print just the experiment's rendered output
//!   (byte-identical to the standalone experiment binary), not the
//!   job JSON; for scripted bit-comparison.
//!
//! Exit codes: 0 job done, 1 job failed or daemon unreachable,
//! 2 usage, 3 gave up on backpressure.

#![forbid(unsafe_code)]

use deep_serve::client::{ServeClient, Submitted};

fn usage() -> ! {
    eprintln!(
        "usage: deep-submit --addr HOST:PORT [--client NAME] [--retries N] \
         (--experiment NAME | --sweep-file PATH | --scenario PATH | --sleep-ms N) \
         [--watch] [--output-only]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("deep-submit: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut client_name = "anon".to_string();
    let mut body: Option<String> = None;
    let mut watch = false;
    let mut output_only = false;
    let mut retries: u32 = 10;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = Some(next("HOST:PORT")),
            "--client" => client_name = next("NAME"),
            "--retries" => {
                retries = next("count").parse().unwrap_or_else(|_| usage());
            }
            "--experiment" => {
                let name = next("NAME");
                body = Some(format!("{{\"experiment\":\"{name}\"}}"));
            }
            "--sweep-file" => {
                let path = next("PATH");
                let raw = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
                body = Some(raw);
            }
            "--scenario" => {
                let path = next("PATH");
                let raw = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
                let scenario = deep_scenario::Scenario::from_toml_str(&raw)
                    .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
                body = Some(deep_json::object([("scenario", scenario.doc.clone())]).to_json());
            }
            "--sleep-ms" => {
                let ms: u64 = next("count").parse().unwrap_or_else(|_| usage());
                body = Some(format!("{{\"sleep_ms\":{ms}}}"));
            }
            "--watch" => watch = true,
            "--output-only" => output_only = true,
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let Some(body) = body else { usage() };
    // Attach the fairness bucket without disturbing the spec members.
    let body = {
        let spec = deep_json::from_str(&body)
            .unwrap_or_else(|e| fail(&format!("submission body is not JSON: {e}")));
        let mut members = vec![(
            "client".to_string(),
            deep_json::Value::String(client_name.clone()),
        )];
        match spec {
            deep_json::Value::Object(kv) => {
                members.extend(kv.into_iter().filter(|(k, _)| k != "client"))
            }
            _ => fail("submission body must be a JSON object"),
        }
        deep_json::Value::Object(members).to_json()
    };

    let mut client = ServeClient::connect(&addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));

    let job = if watch {
        // Submit, then hold a second connection open for the event
        // stream while the first polls for the terminal state.
        let submitted = submit_with_backoff(&mut client, &body, retries);
        let id = submitted["id"]
            .as_u64()
            .unwrap_or_else(|| fail("job without id"));
        if submitted["state"].as_str() != Some("done") {
            let watcher = ServeClient::connect(&addr)
                .unwrap_or_else(|e| fail(&format!("cannot connect watcher: {e}")));
            watcher
                .watch_events(id, |ev| eprintln!("{}", ev.to_json()))
                .unwrap_or_else(|e| fail(&format!("event stream: {e}")));
        }
        client
            .job(id)
            .unwrap_or_else(|e| fail(&format!("fetching job {id}: {e}")))
    } else {
        client.submit_and_wait(&body, retries).unwrap_or_else(|e| {
            if e.to_string().contains("gave up") {
                eprintln!("deep-submit: {e}");
                std::process::exit(3);
            }
            fail(&e.to_string())
        })
    };

    match job["state"].as_str() {
        Some("done") => {
            if output_only {
                match job["result"]["output"].as_str() {
                    Some(out) => print!("{out}"),
                    None => fail("--output-only: job result has no rendered output"),
                }
            } else {
                println!("{}", job.to_json_pretty());
            }
        }
        _ => {
            eprintln!(
                "deep-submit: job failed: {}",
                job["error"].as_str().unwrap_or("unknown error")
            );
            std::process::exit(1);
        }
    }
}

/// Submit with bounded 429/503 back-off; returns the submission-time
/// job JSON (may already be terminal on a cache hit).
fn submit_with_backoff(client: &mut ServeClient, body: &str, max_retries: u32) -> deep_json::Value {
    let mut attempts = 0;
    loop {
        match client.submit_raw(body) {
            Ok(Submitted::Job(job)) => return job,
            Ok(Submitted::Backoff {
                status,
                retry_after_s,
            }) => {
                if attempts >= max_retries {
                    eprintln!("deep-submit: gave up after {attempts} retries (HTTP {status})");
                    std::process::exit(3);
                }
                attempts += 1;
                std::thread::sleep(std::time::Duration::from_millis(
                    u64::from(retry_after_s) * 200,
                ));
            }
            Err(e) => fail(&format!("submit: {e}")),
        }
    }
}
