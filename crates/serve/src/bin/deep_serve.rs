//! The `deep-serve` daemon.
//!
//! ```text
//! deep-serve [--addr HOST:PORT] [--threads N] [--workers N]
//!            [--queue-bound N] [--cache-capacity N] [--cache-dir PATH]
//! ```
//!
//! * `--addr`           — bind address (default `127.0.0.1:8723`;
//!   port 0 picks a free port, printed on startup).
//! * `--threads`        — simulation pool width (default: rayon's).
//! * `--workers`        — concurrent batch executors (default 2).
//! * `--queue-bound`    — admission queue depth (default 32).
//! * `--cache-capacity` — in-memory result-cache entries (default 256).
//! * `--cache-dir`      — spill results to disk, surviving restarts.
//!
//! The first stdout line is `deep-serve listening on <addr>` so
//! scripts can scrape the bound address. SIGTERM (or SIGINT) drains:
//! new submissions get 503 + `Retry-After`, admitted jobs finish,
//! then the process exits 0.

#![forbid(unsafe_code)]

use deep_serve::scheduler::SchedulerConfig;
use deep_serve::server::Server;
use std::io::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: deep-serve [--addr HOST:PORT] [--threads N] [--workers N] \
         [--queue-bound N] [--cache-capacity N] [--cache-dir PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:8723".to_string();
    let mut cfg = SchedulerConfig {
        pool_threads: rayon::current_num_threads() as u32,
        ..SchedulerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = next("HOST:PORT"),
            "--threads" => cfg.pool_threads = parse(&next("count")),
            "--workers" => cfg.workers = parse(&next("count")),
            "--queue-bound" => cfg.queue_bound = parse(&next("count")),
            "--cache-capacity" => cfg.cache_capacity = parse(&next("count")),
            "--cache-dir" => cfg.cache_dir = Some(next("PATH").into()),
            _ => usage(),
        }
    }

    let server = match Server::bind(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("deep-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("deep-serve listening on {}", server.addr);
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run(sigshim::terminate_flag()) {
        eprintln!("deep-serve: {e}");
        std::process::exit(1);
    }
    eprintln!("deep-serve: drained, exiting");
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a valid value: {s}");
        usage()
    })
}
