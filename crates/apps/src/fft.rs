//! Distributed 2-D FFT — the archetype of the paper's *complex* class
//! (slide 9: "most applications are more complex ... complicated
//! communication patterns"): a pencil decomposition whose transpose step
//! is a full personalised all-to-all, the communication pattern that
//! stops scaling long before the halo-exchange codes do.
//!
//! The math is real: a radix-2 Cooley–Tukey transform runs on actual
//! complex data, the transpose moves actual values through the simulated
//! alltoall, and small grids are verified against a direct O(n²) DFT.

use std::rc::Rc;

use deep_psmpi::{Comm, MpiCtx, ReduceOp, Value};

/// A complex number as a pair (re, im).
pub type Cpx = (f64, f64);

fn c_add(a: Cpx, b: Cpx) -> Cpx {
    (a.0 + b.0, a.1 + b.1)
}

fn c_sub(a: Cpx, b: Cpx) -> Cpx {
    (a.0 - b.0, a.1 - b.1)
}

fn c_mul(a: Cpx, b: Cpx) -> Cpx {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// In-place radix-2 Cooley–Tukey FFT. Length must be a power of two.
pub fn fft_inplace(data: &mut [Cpx]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT needs a power-of-two length"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = (1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = c_mul(chunk[k + half], w);
                chunk[k] = c_add(u, v);
                chunk[k + half] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
        }
        len <<= 1;
    }
}

/// Direct O(n²) DFT, the verification reference.
pub fn dft_reference(input: &[Cpx]) -> Vec<Cpx> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (j, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = c_add(acc, c_mul(x, (ang.cos(), ang.sin())));
            }
            acc
        })
        .collect()
}

/// Serial 2-D FFT (rows then columns) of an `n × n` grid.
pub fn fft2d_reference(grid: &[Cpx], n: usize) -> Vec<Cpx> {
    let mut out = grid.to_vec();
    // Rows.
    for r in 0..n {
        fft_inplace(&mut out[r * n..(r + 1) * n]);
    }
    // Columns.
    let mut col = vec![(0.0, 0.0); n];
    for c in 0..n {
        for r in 0..n {
            col[r] = out[r * n + c];
        }
        fft_inplace(&mut col);
        for r in 0..n {
            out[r * n + c] = col[r];
        }
    }
    out
}

/// Pack complex rows as an interleaved f64 vector for the wire.
fn pack(rows: &[Cpx]) -> Vec<f64> {
    let mut v = Vec::with_capacity(rows.len() * 2);
    for &(re, im) in rows {
        v.push(re);
        v.push(im);
    }
    v
}

fn unpack(v: &[f64]) -> Vec<Cpx> {
    v.chunks_exact(2).map(|c| (c[0], c[1])).collect()
}

/// Outcome of a distributed 2-D FFT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FftResult {
    /// Sum of output magnitudes (cross-run check).
    pub magnitude_checksum: f64,
    /// Bytes moved through the transpose per rank.
    pub transpose_bytes: u64,
}

/// Distributed pencil 2-D FFT of an `n × n` grid over `comm`.
///
/// `n` must be a power of two and divisible by the communicator size.
/// Each rank owns `n/size` contiguous rows: FFT along rows, global
/// transpose via personalised alltoall, FFT along the (now-local) other
/// dimension. The transpose IS the scalability problem — every rank
/// talks to every rank, every step.
pub async fn fft2d_distributed(
    m: &MpiCtx,
    comm: &Comm,
    grid_rows: Vec<Vec<Cpx>>, // this rank's rows, each of length n
    n: usize,
) -> (Vec<Vec<Cpx>>, FftResult) {
    let size = comm.size() as usize;
    assert!(n.is_power_of_two());
    assert_eq!(n % size, 0, "grid must divide over ranks");
    let rows_per = n / size;
    assert_eq!(grid_rows.len(), rows_per);

    // 1. Row FFTs (local).
    let mut rows = grid_rows;
    for row in &mut rows {
        assert_eq!(row.len(), n);
        fft_inplace(row);
    }

    // 2. Global transpose: block (r, c) goes to rank c, becoming its
    //    column block. Personalised all-to-all with real payloads.
    let block_bytes = (rows_per * rows_per * 16) as u64;
    let blocks: Vec<Value> = (0..size)
        .map(|dest| {
            // Sub-block: my rows, columns dest*rows_per..(dest+1)*rows_per.
            let mut sub = Vec::with_capacity(rows_per * rows_per);
            for row in &rows {
                sub.extend_from_slice(&row[dest * rows_per..(dest + 1) * rows_per]);
            }
            Value::vec(pack(&sub))
        })
        .collect();
    let received = m.alltoall(comm, blocks, block_bytes).await;

    // Reassemble: received[s] holds rank s's rows of my column block,
    // laid out row-major within the sub-block; transpose into my new rows.
    let mut new_rows: Vec<Vec<Cpx>> = vec![vec![(0.0, 0.0); n]; rows_per];
    for (s, block) in received.iter().enumerate() {
        let sub = unpack(block.as_vec());
        for (i, chunk) in sub.chunks_exact(rows_per).enumerate() {
            // chunk = sender's row i of my columns; element j belongs to
            // my local row j, global column s*rows_per + i.
            for (j, &v) in chunk.iter().enumerate() {
                new_rows[j][s * rows_per + i] = v;
            }
        }
    }

    // 3. FFT along the transposed dimension (local).
    for row in &mut new_rows {
        fft_inplace(row);
    }

    // Checksum across all ranks.
    let local_mag: f64 = new_rows
        .iter()
        .flatten()
        .map(|&(re, im)| (re * re + im * im).sqrt())
        .sum();
    let total = m
        .allreduce(comm, ReduceOp::Sum, Value::F64(local_mag), 8)
        .await
        .as_f64();
    (
        new_rows,
        FftResult {
            magnitude_checksum: total,
            transpose_bytes: block_bytes * size as u64,
        },
    )
}

/// Driver: run the distributed FFT of a deterministic test pattern over
/// an ideal wire; returns (result, elapsed virtual ns).
pub fn run_fft_ideal(seed: u64, n_ranks: u32, n: usize) -> (FftResult, u64) {
    use deep_psmpi::{launch_world, EpId, IdealWire, MpiParams, Universe};
    use std::cell::Cell;

    let mut sim = deep_simkit::Simulation::new(seed);
    let ctx = sim.handle();
    let wire = Rc::new(IdealWire::new(
        &ctx,
        deep_simkit::SimDuration::micros(1),
        6e9,
    ));
    let uni = Universe::new(&ctx, wire, n_ranks as usize, MpiParams::default());
    let out = Rc::new(Cell::new(FftResult {
        magnitude_checksum: f64::NAN,
        transpose_bytes: 0,
    }));
    let out2 = out.clone();
    launch_world(&uni, "fft", (0..n_ranks).map(EpId).collect(), move |m| {
        let out = out2.clone();
        Box::pin(async move {
            let comm = m.world().clone();
            let size = comm.size() as usize;
            let rows_per = n / size;
            let first = m.rank() as usize * rows_per;
            let rows: Vec<Vec<Cpx>> = (0..rows_per)
                .map(|i| (0..n).map(|j| test_pattern(first + i, j, n)).collect())
                .collect();
            let (_, res) = fft2d_distributed(&m, &comm, rows, n).await;
            if m.rank() == 0 {
                out.set(res);
            }
        })
    });
    sim.run().assert_completed();
    (out.get(), sim.now().as_nanos())
}

/// The deterministic input pattern used by driver and tests.
pub fn test_pattern(r: usize, c: usize, n: usize) -> Cpx {
    let x = (r * 31 + c * 17) % n;
    ((x as f64 / n as f64) - 0.5, ((r + c) % 3) as f64 * 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_matches_direct_dft() {
        for n in [2usize, 4, 8, 32] {
            let input: Vec<Cpx> = (0..n).map(|i| test_pattern(i, 3 * i, n.max(4))).collect();
            let mut fast = input.clone();
            fft_inplace(&mut fast);
            let slow = dft_reference(&input);
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!((a.0 - b.0).abs() < 1e-9, "{a:?} vs {b:?}");
                assert!((a.1 - b.1).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![(0.0, 0.0); 16];
        data[0] = (1.0, 0.0);
        fft_inplace(&mut data);
        for &(re, im) in &data {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn distributed_fft_matches_serial_2d() {
        let n = 16;
        let grid: Vec<Cpx> = (0..n * n).map(|i| test_pattern(i / n, i % n, n)).collect();
        let serial = fft2d_reference(&grid, n);
        let serial_mag: f64 = serial
            .iter()
            .map(|&(re, im)| (re * re + im * im).sqrt())
            .sum();
        for ranks in [1u32, 2, 4, 8] {
            let (res, _) = run_fft_ideal(1, ranks, n);
            assert!(
                (res.magnitude_checksum - serial_mag).abs() < 1e-6 * serial_mag,
                "ranks={ranks}: {} vs serial {}",
                res.magnitude_checksum,
                serial_mag
            );
        }
    }

    #[test]
    fn transpose_volume_scales_with_grid() {
        let (small, _) = run_fft_ideal(1, 4, 16);
        let (large, _) = run_fft_ideal(1, 4, 64);
        assert_eq!(large.transpose_bytes, small.transpose_bytes * 16);
    }

    #[test]
    fn more_ranks_more_messages_per_step() {
        // The complex class's curse: time per FFT stops improving as the
        // alltoall message count grows quadratically.
        let (_, t2) = run_fft_ideal(1, 2, 64);
        let (_, t8) = run_fft_ideal(1, 8, 64);
        // 4x the ranks gives far less than 4x the speedup.
        assert!(
            (t2 as f64) / (t8 as f64) < 3.0,
            "t2={t2} t8={t8}: alltoall already limits scaling"
        );
    }
}
