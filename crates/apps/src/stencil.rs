//! Distributed 2-D Jacobi stencil — the second HSCP proxy: regular
//! nearest-neighbour communication, memory-bound compute, the classic
//! booster workload.
//!
//! Solves the steady-state heat equation on an `nx × ny` grid with fixed
//! boundary values (left edge hot, right edge cold), stripes of rows per
//! rank, halo exchange each sweep.

use std::rc::Rc;

use deep_psmpi::{Comm, MpiCtx, ReduceOp, Value};

use crate::cg::my_rows;

const TAG_UP: u32 = 2101;
const TAG_DOWN: u32 = 2102;

/// Outcome of a Jacobi run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilResult {
    /// Sweeps executed.
    pub sweeps: u32,
    /// Final global max update magnitude.
    pub max_delta: f64,
    /// Global field checksum.
    pub checksum: f64,
}

/// Boundary condition: temperature at grid edges.
fn boundary(c: usize, nx: usize) -> (f64, f64) {
    // Left edge 1.0, right edge 0.0, linear is the fixed point.
    let left = 1.0;
    let right = 0.0;
    let _ = (c, nx);
    (left, right)
}

/// Run `max_sweeps` Jacobi sweeps (or stop when the update drops below
/// `tol`). Collective over `comm`.
pub async fn jacobi(
    m: &MpiCtx,
    comm: &Comm,
    nx: usize,
    ny: usize,
    max_sweeps: u32,
    tol: f64,
) -> StencilResult {
    let rank = comm.rank();
    let size = comm.size();
    let rows = my_rows(rank, size, ny).len();
    let active = size.min(ny as u32);
    let row_bytes = 8 * nx as u64;

    let mut field = vec![0.0f64; rows * nx];
    let mut next = field.clone();
    let mut sweeps = 0;
    let mut max_delta = f64::INFINITY;

    while sweeps < max_sweeps && max_delta > tol {
        // Halo exchange (receives posted before sends). Ranks without
        // rows sit out entirely but still join the global reductions.
        let recv_up = (rows > 0 && rank > 0).then(|| m.irecv(comm, Some(rank - 1), Some(TAG_DOWN)));
        let recv_down =
            (rows > 0 && rank + 1 < active).then(|| m.irecv(comm, Some(rank + 1), Some(TAG_UP)));
        if rows > 0 && rank > 0 {
            m.send(
                comm,
                rank - 1,
                TAG_UP,
                Value::vec(field[..nx].to_vec()),
                row_bytes,
            )
            .await;
        }
        if rows > 0 && rank + 1 < active {
            m.send(
                comm,
                rank + 1,
                TAG_DOWN,
                Value::vec(field[(rows - 1) * nx..].to_vec()),
                row_bytes,
            )
            .await;
        }
        let halo_up = match recv_up {
            Some(r) => Some(r.wait().await.value.as_vec().to_vec()),
            None => None,
        };
        let halo_down = match recv_down {
            Some(r) => Some(r.wait().await.value.as_vec().to_vec()),
            None => None,
        };

        // Sweep.
        let mut local_delta = 0.0f64;
        for r in 0..rows {
            for c in 0..nx {
                let idx = r * nx + c;
                let (lbc, rbc) = boundary(c, nx);
                let west = if c > 0 { field[idx - 1] } else { lbc };
                let east = if c + 1 < nx { field[idx + 1] } else { rbc };
                let north = if r > 0 {
                    field[idx - nx]
                } else if let Some(h) = &halo_up {
                    h[c]
                } else {
                    field[idx] // insulated top boundary
                };
                let south = if r + 1 < rows {
                    field[idx + nx]
                } else if let Some(h) = &halo_down {
                    h[c]
                } else {
                    field[idx] // insulated bottom boundary
                };
                let v = 0.25 * (west + east + north + south);
                local_delta = local_delta.max((v - field[idx]).abs());
                next[idx] = v;
            }
        }
        std::mem::swap(&mut field, &mut next);
        max_delta = m
            .allreduce(comm, ReduceOp::Max, Value::F64(local_delta), 8)
            .await
            .as_f64();
        sweeps += 1;
    }

    let local_sum: f64 = field.iter().sum();
    let checksum = m
        .allreduce(comm, ReduceOp::Sum, Value::F64(local_sum), 8)
        .await
        .as_f64();
    StencilResult {
        sweeps,
        max_delta,
        checksum,
    }
}

/// Convenience driver over an ideal wire (tests/benches).
pub fn run_jacobi_ideal(
    seed: u64,
    n_ranks: u32,
    nx: usize,
    ny: usize,
    max_sweeps: u32,
    tol: f64,
) -> (StencilResult, u64) {
    use deep_psmpi::{launch_world, EpId, IdealWire, MpiParams, Universe};
    use std::cell::Cell;

    let mut sim = deep_simkit::Simulation::new(seed);
    let ctx = sim.handle();
    let wire = Rc::new(IdealWire::new(
        &ctx,
        deep_simkit::SimDuration::micros(1),
        6e9,
    ));
    let uni = Universe::new(&ctx, wire, n_ranks as usize, MpiParams::default());
    let out = Rc::new(Cell::new(StencilResult {
        sweeps: 0,
        max_delta: f64::NAN,
        checksum: f64::NAN,
    }));
    let out2 = out.clone();
    launch_world(&uni, "jacobi", (0..n_ranks).map(EpId).collect(), move |m| {
        let out = out2.clone();
        Box::pin(async move {
            let comm = m.world().clone();
            let res = jacobi(&m, &comm, nx, ny, max_sweeps, tol).await;
            if m.rank() == 0 {
                out.set(res);
            }
        })
    });
    sim.run().assert_completed();
    (out.get(), sim.now().as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_converges_towards_linear_profile() {
        let (res, _) = run_jacobi_ideal(1, 1, 16, 8, 4000, 1e-10);
        // Fixed point: field[c] ≈ linear interpolation between the cell
        // midpoints adjacent to the boundaries. Checksum of the linear
        // profile over 16 columns, 8 rows:
        // value at column c is (nx - c - 0.5)/nx... verify via delta only.
        assert!(res.max_delta < 1e-9, "converged, delta {}", res.max_delta);
        assert!(res.checksum > 0.0 && res.checksum < (16 * 8) as f64);
    }

    #[test]
    fn rank_count_does_not_change_the_physics() {
        let (a, _) = run_jacobi_ideal(1, 1, 12, 12, 600, 1e-9);
        let (b, _) = run_jacobi_ideal(1, 4, 12, 12, 600, 1e-9);
        assert_eq!(a.sweeps, b.sweeps);
        assert!(
            (a.checksum - b.checksum).abs() < 1e-6,
            "checksums {} vs {}",
            a.checksum,
            b.checksum
        );
    }

    #[test]
    fn tighter_tolerance_needs_more_sweeps() {
        let (loose, _) = run_jacobi_ideal(1, 2, 12, 12, 10_000, 1e-4);
        let (tight, _) = run_jacobi_ideal(1, 2, 12, 12, 10_000, 1e-8);
        assert!(tight.sweeps > loose.sweeps);
    }
}
