//! Synthetic job mixes for the resource-management experiments (F22):
//! deterministic generators of workloads with heterogeneous booster
//! demand, the situation where dynamic assignment pays off.

use deep_simkit::{SimDuration, SimRng};

/// Parameters of a generated mix.
#[derive(Debug, Clone, Copy)]
pub struct MixParams {
    /// Number of jobs.
    pub n_jobs: u32,
    /// Mean inter-arrival time.
    pub mean_interarrival: SimDuration,
    /// Cluster nodes per job (uniform 1..=max).
    pub max_cn: u32,
    /// Booster nodes per offload phase (uniform 0..=max).
    pub max_bn: u32,
    /// Mean cluster-phase duration.
    pub mean_cn_time: SimDuration,
    /// Mean offload-phase duration.
    pub mean_bn_time: SimDuration,
    /// Phases per job (uniform 1..=max).
    pub max_phases: u32,
    /// Fraction of jobs that never offload (pure cluster codes).
    pub pure_cluster_fraction: f64,
}

impl Default for MixParams {
    fn default() -> Self {
        MixParams {
            n_jobs: 24,
            mean_interarrival: SimDuration::secs(20),
            max_cn: 4,
            max_bn: 8,
            mean_cn_time: SimDuration::secs(60),
            mean_bn_time: SimDuration::secs(40),
            max_phases: 3,
            pure_cluster_fraction: 0.3,
        }
    }
}

/// Generate a deterministic `(arrival, spec)` list for `seed`.
pub fn generate_mix(seed: u64, p: MixParams) -> Vec<(SimDuration, deep_resmgr::JobSpec)> {
    let mut rng = SimRng::from_seed_stream(seed, 0x10B);
    let mut out = Vec::with_capacity(p.n_jobs as usize);
    let mut arrival = SimDuration::ZERO;
    for j in 0..p.n_jobs {
        arrival += SimDuration::from_secs_f64(rng.gen_exp(p.mean_interarrival.as_secs_f64()));
        let pure = rng.gen_f64() < p.pure_cluster_fraction;
        let n_phases = rng.gen_range(1..=p.max_phases);
        let mut phases = Vec::with_capacity(n_phases as usize);
        for _ in 0..n_phases {
            let cn_time =
                SimDuration::from_secs_f64(rng.gen_exp(p.mean_cn_time.as_secs_f64()).max(1.0));
            let (bn_needed, bn_time) = if pure {
                (0, SimDuration::ZERO)
            } else {
                (
                    rng.gen_range(1..=p.max_bn.max(1)),
                    SimDuration::from_secs_f64(rng.gen_exp(p.mean_bn_time.as_secs_f64()).max(1.0)),
                )
            };
            phases.push(deep_resmgr::JobPhase {
                cn_time,
                bn_needed,
                bn_time,
            });
        }
        out.push((
            arrival,
            deep_resmgr::JobSpec {
                name: format!("job{j}"),
                cn_needed: rng.gen_range(1..=p.max_cn),
                phases,
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_per_seed() {
        let a = generate_mix(7, MixParams::default());
        let b = generate_mix(7, MixParams::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
        }
        let c = generate_mix(8, MixParams::default());
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.1 != y.1));
    }

    #[test]
    fn arrivals_are_nondecreasing() {
        let mix = generate_mix(3, MixParams::default());
        for w in mix.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn pure_cluster_fraction_roughly_respected() {
        let p = MixParams {
            n_jobs: 200,
            ..MixParams::default()
        };
        let mix = generate_mix(11, p);
        let pure = mix
            .iter()
            .filter(|(_, j)| j.phases.iter().all(|ph| ph.bn_needed == 0))
            .count();
        let frac = pure as f64 / 200.0;
        assert!((0.2..0.4).contains(&frac), "pure fraction {frac}");
    }

    #[test]
    fn bounds_respected() {
        let p = MixParams::default();
        for (_, j) in generate_mix(5, p) {
            assert!(j.cn_needed >= 1 && j.cn_needed <= p.max_cn);
            assert!(!j.phases.is_empty() && j.phases.len() <= p.max_phases as usize);
            for ph in &j.phases {
                assert!(ph.bn_needed <= p.max_bn);
            }
        }
    }
}
