//! # deep-apps — workload proxies for the DEEP reproduction
//!
//! Numerically real miniature versions of the application classes the
//! paper discusses:
//!
//! * [`cholesky`] — the tiled Cholesky of slide 23 (OmpSs showcase), with
//!   real `f64` tiles so dataflow execution is verified against a serial
//!   reference factorisation;
//! * [`cg`] — distributed conjugate gradient on a 2-D Laplacian: the
//!   "sparse matrix-vector, highly regular" HSCP archetype of slide 9;
//! * [`stencil`] — distributed Jacobi heat solver, the second HSCP proxy;
//! * [`fft`] — distributed pencil 2-D FFT: the *complex* application
//!   class, whose all-to-all transpose stops scaling early (slide 9);
//! * [`jobmix`] — deterministic synthetic job mixes for the resource-
//!   management experiments;
//! * [`ckpt`] — checkpointable-state hooks (DEEP-ER): per-rank restart
//!   state sizes and progress marks consumed by the `deep-io`
//!   checkpoint/resilience stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cg;
pub mod cholesky;
pub mod ckpt;
pub mod dcholesky;
pub mod fft;
pub mod jobmix;
pub mod stencil;

pub use cg::{cg_reference, cg_solve, run_cg_ideal, CgResult};
pub use cholesky::{cholesky_graph, factorisation_error, spd_matrix, TiledMatrix};
pub use ckpt::{Checkpointable, DCholeskyState, StencilState};
pub use dcholesky::{cholesky_distributed, run_dcholesky_ideal, DCholeskyResult};
pub use fft::{fft2d_distributed, fft2d_reference, fft_inplace, run_fft_ideal, FftResult};
pub use jobmix::{generate_mix, MixParams};
pub use stencil::{jacobi, run_jacobi_ideal, StencilResult};
