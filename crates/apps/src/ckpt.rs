//! Checkpointable-state hooks (DEEP-ER): what each proxy application
//! would have to save for a restart, per rank, and how far it has got.
//!
//! The storage/resilience stack (`deep-io`) works in bytes-per-rank and
//! opaque progress marks; these hooks are the application side of that
//! contract. They deliberately describe the *restart state* — the data a
//! checkpoint must capture — not the transient working set.

use crate::cg::my_rows;
use crate::dcholesky::column_owner;

/// An application whose restart state can be checkpointed.
pub trait Checkpointable {
    /// Stable name for tables and traces.
    fn app_name(&self) -> &'static str;
    /// Bytes this rank must write per checkpoint.
    fn state_bytes(&self) -> u64;
    /// Monotone progress mark (sweeps done, panels factored, …) suitable
    /// for [`deep_io` commit-log] bookkeeping.
    fn progress_mark(&self) -> u64;
}

/// Restart state of one Jacobi stencil rank: its stripe of the field
/// (the `next` buffer and halos are recomputed after restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilState {
    nx: usize,
    rows: usize,
    sweeps: u32,
}

impl StencilState {
    /// State of `rank` of `size` on an `nx × ny` grid, before any sweep.
    pub fn of_rank(rank: u32, size: u32, nx: usize, ny: usize) -> StencilState {
        StencilState {
            nx,
            rows: my_rows(rank, size, ny).len(),
            sweeps: 0,
        }
    }

    /// Record completed sweeps (progress marks are cumulative sweeps).
    pub fn advance(&mut self, sweeps: u32) {
        self.sweeps += sweeps;
    }

    /// The largest per-rank state over all ranks of the decomposition —
    /// what a synchronised collective checkpoint must budget for.
    pub fn max_state_bytes(size: u32, nx: usize, ny: usize) -> u64 {
        (0..size)
            .map(|r| StencilState::of_rank(r, size, nx, ny).state_bytes())
            .max()
            .unwrap_or(0)
    }
}

impl Checkpointable for StencilState {
    fn app_name(&self) -> &'static str {
        "jacobi-stencil"
    }

    fn state_bytes(&self) -> u64 {
        8 * (self.rows * self.nx) as u64
    }

    fn progress_mark(&self) -> u64 {
        self.sweeps as u64
    }
}

/// Restart state of one distributed-Cholesky rank: every tile of its
/// owned block columns (factored panels and not-yet-updated trailing
/// tiles alike live in the same buffers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DCholeskyState {
    nt: usize,
    ts: usize,
    owned_tiles: usize,
    panels_done: usize,
}

impl DCholeskyState {
    /// State of `rank` of `p` for an `nt × nt`-tile factorisation with
    /// `ts × ts` tiles under 1-D block-cyclic column distribution.
    pub fn of_rank(rank: u32, p: u32, nt: usize, ts: usize) -> DCholeskyState {
        let owned_tiles = (0..nt)
            .filter(|&j| column_owner(j, p) == rank)
            .map(|j| nt - j) // lower-triangle tiles i ∈ [j, nt)
            .sum();
        DCholeskyState {
            nt,
            ts,
            owned_tiles,
            panels_done: 0,
        }
    }

    /// Record factored panels (progress marks are completed panels).
    pub fn advance(&mut self, panels: usize) {
        self.panels_done = (self.panels_done + panels).min(self.nt);
    }

    /// The largest per-rank state over all ranks.
    pub fn max_state_bytes(p: u32, nt: usize, ts: usize) -> u64 {
        (0..p)
            .map(|r| DCholeskyState::of_rank(r, p, nt, ts).state_bytes())
            .max()
            .unwrap_or(0)
    }
}

impl Checkpointable for DCholeskyState {
    fn app_name(&self) -> &'static str {
        "distributed-cholesky"
    }

    fn state_bytes(&self) -> u64 {
        (self.owned_tiles * self.ts * self.ts * 8) as u64
    }

    fn progress_mark(&self) -> u64 {
        self.panels_done as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_state_partitions_the_grid() {
        let (nx, ny, size) = (64usize, 50usize, 4u32);
        let total: u64 = (0..size)
            .map(|r| StencilState::of_rank(r, size, nx, ny).state_bytes())
            .sum();
        assert_eq!(total, (8 * nx * ny) as u64, "stripes cover the field");
        assert!(StencilState::max_state_bytes(size, nx, ny) >= total / size as u64);
    }

    #[test]
    fn dcholesky_states_cover_the_lower_triangle() {
        let (nt, ts, p) = (6usize, 8usize, 3u32);
        let total: u64 = (0..p)
            .map(|r| DCholeskyState::of_rank(r, p, nt, ts).state_bytes())
            .sum();
        let tiles = nt * (nt + 1) / 2;
        assert_eq!(total, (tiles * ts * ts * 8) as u64);
    }

    #[test]
    fn progress_marks_advance_monotonically() {
        let mut s = StencilState::of_rank(0, 2, 16, 16);
        assert_eq!(s.progress_mark(), 0);
        s.advance(10);
        s.advance(5);
        assert_eq!(s.progress_mark(), 15);

        let mut c = DCholeskyState::of_rank(1, 2, 4, 8);
        c.advance(3);
        c.advance(3); // clamped at nt
        assert_eq!(c.progress_mark(), 4);
    }
}
