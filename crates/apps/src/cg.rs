//! Distributed conjugate-gradient solver on a 2-D Laplacian — the
//! paper's archetype of a *highly scalable code part* (slide 9: "sparse
//! matrix-vector codes, highly regular communication patterns").
//!
//! The grid is partitioned into horizontal stripes, one per rank. Each CG
//! iteration does one SpMV with nearest-neighbour halo exchange plus two
//! global dot products (allreduce) — exactly the regular pattern that
//! scales on a torus.

use std::rc::Rc;

use deep_psmpi::{Comm, MpiCtx, ReduceOp, Value};

const TAG_HALO_UP: u32 = 2001;
const TAG_HALO_DOWN: u32 = 2002;

/// Outcome of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Iterations executed.
    pub iterations: u32,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Global solution checksum (sum of entries), for cross-run checks.
    pub checksum: f64,
}

/// Rows owned by `rank` in a `ny`-row grid over `size` ranks.
pub fn my_rows(rank: u32, size: u32, ny: usize) -> std::ops::Range<usize> {
    let per = ny / size as usize;
    let extra = ny % size as usize;
    let r = rank as usize;
    let start = r * per + r.min(extra);
    let len = per + usize::from(r < extra);
    start..start + len
}

/// 5-point Laplacian SpMV on the local stripe: `out = A·v`, with halo rows
/// provided by the neighbours (`None` at the physical boundary).
fn local_spmv(
    v: &[f64],
    halo_up: Option<&[f64]>,
    halo_down: Option<&[f64]>,
    nx: usize,
    rows: usize,
    out: &mut [f64],
) {
    for r in 0..rows {
        for c in 0..nx {
            let idx = r * nx + c;
            let mut acc = 4.0 * v[idx];
            if c > 0 {
                acc -= v[idx - 1];
            }
            if c + 1 < nx {
                acc -= v[idx + 1];
            }
            if r > 0 {
                acc -= v[idx - nx];
            } else if let Some(h) = halo_up {
                acc -= h[c];
            }
            if r + 1 < rows {
                acc -= v[idx + nx];
            } else if let Some(h) = halo_down {
                acc -= h[c];
            }
            out[idx] = acc;
        }
    }
}

/// Exchange stripe boundary rows with the neighbours. `active` is the
/// number of ranks that actually own rows (ranks beyond it sit out —
/// they exist when the grid has fewer rows than the communicator has
/// ranks).
async fn halo_exchange(
    m: &MpiCtx,
    comm: &Comm,
    v: &[f64],
    nx: usize,
    rows: usize,
    active: u32,
) -> (Option<Vec<f64>>, Option<Vec<f64>>) {
    let rank = comm.rank();
    if rows == 0 {
        return (None, None);
    }
    let row_bytes = 8 * nx as u64;
    let mut up = None;
    let mut down = None;

    // Post receives first, then send, to avoid ordering artefacts.
    let recv_up = (rank > 0).then(|| m.irecv(comm, Some(rank - 1), Some(TAG_HALO_DOWN)));
    let recv_down = (rank + 1 < active).then(|| m.irecv(comm, Some(rank + 1), Some(TAG_HALO_UP)));
    if rank > 0 {
        let first_row: Vec<f64> = v[..nx].to_vec();
        m.send(
            comm,
            rank - 1,
            TAG_HALO_UP,
            Value::vec(first_row),
            row_bytes,
        )
        .await;
    }
    if rank + 1 < active {
        let last_row: Vec<f64> = v[(rows - 1) * nx..rows * nx].to_vec();
        m.send(
            comm,
            rank + 1,
            TAG_HALO_DOWN,
            Value::vec(last_row),
            row_bytes,
        )
        .await;
    }
    if let Some(r) = recv_up {
        up = Some(r.wait().await.value.as_vec().to_vec());
    }
    if let Some(r) = recv_down {
        down = Some(r.wait().await.value.as_vec().to_vec());
    }
    (up, down)
}

/// Global dot product via allreduce.
async fn dot(m: &MpiCtx, comm: &Comm, a: &[f64], b: &[f64]) -> f64 {
    let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    m.allreduce(comm, ReduceOp::Sum, Value::F64(local), 8)
        .await
        .as_f64()
}

/// Solve `A·x = 1` on an `nx × ny` 5-point Laplacian with plain CG.
/// Collective over `comm`; every rank returns the same global result.
pub async fn cg_solve(
    m: &MpiCtx,
    comm: &Comm,
    nx: usize,
    ny: usize,
    max_iters: u32,
    tol: f64,
) -> CgResult {
    let rank = comm.rank();
    let size = comm.size();
    let rows = my_rows(rank, size, ny).len();
    // Ranks that own at least one row; trailing ranks may own none when
    // the communicator is larger than the grid.
    let active = size.min(ny as u32);
    let n_local = rows * nx;

    let b = vec![1.0f64; n_local];
    let mut x = vec![0.0f64; n_local];
    let mut r: Vec<f64> = b.clone(); // r = b - A·0
    let mut p = r.clone();
    let mut rr = dot(m, comm, &r, &r).await;
    let mut ap = vec![0.0f64; n_local];
    let mut iters = 0;

    while iters < max_iters && rr.sqrt() > tol {
        let (up, down) = halo_exchange(m, comm, &p, nx, rows, active).await;
        local_spmv(&p, up.as_deref(), down.as_deref(), nx, rows, &mut ap);
        let pap = dot(m, comm, &p, &ap).await;
        let alpha = rr / pap;
        for i in 0..n_local {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new = dot(m, comm, &r, &r).await;
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n_local {
            p[i] = r[i] + beta * p[i];
        }
        iters += 1;
    }

    let local_sum: f64 = x.iter().sum();
    let checksum = m
        .allreduce(comm, ReduceOp::Sum, Value::F64(local_sum), 8)
        .await
        .as_f64();
    CgResult {
        iterations: iters,
        residual: rr.sqrt(),
        checksum,
    }
}

/// A serial reference CG (no MPI) for correctness comparison.
pub fn cg_reference(nx: usize, ny: usize, max_iters: u32, tol: f64) -> CgResult {
    let n = nx * ny;
    let spmv = |v: &[f64], out: &mut [f64]| {
        for r in 0..ny {
            for c in 0..nx {
                let idx = r * nx + c;
                let mut acc = 4.0 * v[idx];
                if c > 0 {
                    acc -= v[idx - 1];
                }
                if c + 1 < nx {
                    acc -= v[idx + 1];
                }
                if r > 0 {
                    acc -= v[idx - nx];
                }
                if r + 1 < ny {
                    acc -= v[idx + nx];
                }
                out[idx] = acc;
            }
        }
    };
    let b = vec![1.0f64; n];
    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rr: f64 = r.iter().map(|v| v * v).sum();
    let mut ap = vec![0.0f64; n];
    let mut iters = 0;
    while iters < max_iters && rr.sqrt() > tol {
        spmv(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        iters += 1;
    }
    CgResult {
        iterations: iters,
        residual: rr.sqrt(),
        checksum: x.iter().sum(),
    }
}

/// Convenience: run the distributed CG on `n_ranks` over an ideal wire and
/// return rank 0's result (used by tests and benches).
pub fn run_cg_ideal(
    seed: u64,
    n_ranks: u32,
    nx: usize,
    ny: usize,
    max_iters: u32,
    tol: f64,
) -> (CgResult, u64) {
    use deep_psmpi::{launch_world, EpId, IdealWire, MpiParams, Universe};
    use std::cell::Cell;

    let mut sim = deep_simkit::Simulation::new(seed);
    let ctx = sim.handle();
    let wire = Rc::new(IdealWire::new(
        &ctx,
        deep_simkit::SimDuration::micros(1),
        6e9,
    ));
    let uni = Universe::new(&ctx, wire, n_ranks as usize, MpiParams::default());
    let out = Rc::new(Cell::new(CgResult {
        iterations: 0,
        residual: f64::NAN,
        checksum: f64::NAN,
    }));
    let out2 = out.clone();
    launch_world(&uni, "cg", (0..n_ranks).map(EpId).collect(), move |m| {
        let out = out2.clone();
        Box::pin(async move {
            let comm = m.world().clone();
            let res = cg_solve(&m, &comm, nx, ny, max_iters, tol).await;
            if m.rank() == 0 {
                out.set(res);
            }
        })
    });
    sim.run().assert_completed();
    (out.get(), sim.now().as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_partition_is_complete_and_disjoint() {
        for (size, ny) in [(1u32, 10usize), (3, 10), (4, 10), (10, 10), (7, 23)] {
            let mut covered = vec![false; ny];
            for rank in 0..size {
                for row in my_rows(rank, size, ny) {
                    assert!(!covered[row], "row {row} owned twice");
                    covered[row] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "size={size} ny={ny}");
        }
    }

    #[test]
    fn reference_cg_converges() {
        let res = cg_reference(16, 16, 500, 1e-8);
        assert!(res.residual < 1e-8);
        assert!(res.iterations < 200);
    }

    #[test]
    fn distributed_cg_matches_reference() {
        let serial = cg_reference(16, 16, 500, 1e-8);
        for ranks in [1u32, 2, 3, 4] {
            let (dist, _) = run_cg_ideal(1, ranks, 16, 16, 500, 1e-8);
            assert!(
                dist.residual < 1e-8,
                "ranks={ranks} residual {}",
                dist.residual
            );
            assert!(
                (dist.checksum - serial.checksum).abs() < 1e-6 * serial.checksum.abs(),
                "ranks={ranks}: checksum {} vs serial {}",
                dist.checksum,
                serial.checksum
            );
            // Iteration counts may differ by a couple due to FP ordering.
            assert!((dist.iterations as i64 - serial.iterations as i64).abs() <= 3);
        }
    }

    #[test]
    fn more_ranks_do_not_change_the_math() {
        let (a, _) = run_cg_ideal(1, 2, 24, 24, 300, 1e-7);
        let (b, _) = run_cg_ideal(1, 6, 24, 24, 300, 1e-7);
        assert!((a.checksum - b.checksum).abs() < 1e-5 * a.checksum.abs());
    }
}
