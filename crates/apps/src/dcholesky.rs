//! Distributed tiled Cholesky over MPI ranks — the slide-23 kernel scaled
//! beyond one node: a right-looking factorisation with 1-D block-cyclic
//! column distribution (ScaLAPACK-style), panel broadcasts, and real
//! numerics verified against the serial reference.
//!
//! Communication pattern: one panel broadcast per iteration — regular and
//! log-depth, i.e. *highly scalable code part* material, in contrast to
//! the FFT's all-to-all.

use std::collections::BTreeMap;
use std::rc::Rc;

use deep_hw::{roofline, NodeModel};
use deep_psmpi::{Comm, MpiCtx, Value};

use crate::cholesky::{gemm_nt, potrf, spd_matrix, syrk, trsm};

/// Which rank owns block column `j` under 1-D block-cyclic distribution.
pub fn column_owner(j: usize, p: u32) -> u32 {
    (j % p as usize) as u32
}

/// Outcome of a distributed factorisation.
#[derive(Debug, Clone, Copy)]
pub struct DCholeskyResult {
    /// Max |L·Lᵀ − A| over the lower triangle (computed at rank 0).
    pub max_error: f64,
    /// Panel broadcasts performed (= nt).
    pub panels: usize,
}

/// Sleep for the roofline time of a tile kernel on `node` (1 core).
async fn charge(m: &MpiCtx, node: &NodeModel, kind: &str, ts: usize) {
    let profile = crate::cholesky::kernel_profile(kind, ts);
    let t = roofline::exec_time(node, &profile, 1);
    m.sim().sleep(t.time).await;
}

/// Distributed right-looking Cholesky of the deterministic SPD test
/// matrix of order `nt·ts`. Collective over `comm`; every rank returns,
/// rank 0 carries the verification error.
pub async fn cholesky_distributed(
    m: &MpiCtx,
    comm: &Comm,
    nt: usize,
    ts: usize,
    node: &NodeModel,
) -> DCholeskyResult {
    let p = comm.size();
    let rank = comm.rank();
    let n = nt * ts;
    let a = spd_matrix(n);

    // My tiles: (i, j) → ts×ts data, for owned columns j (lower triangle).
    // Ordered map: tiles are addressed by key in the factorisation loops,
    // but the verification gather walks columns — an ordered container
    // keeps any iteration deterministic (deep-lint rule D1).
    let mut tiles: BTreeMap<(usize, usize), Vec<f64>> = BTreeMap::new();
    for j in 0..nt {
        if column_owner(j, p) != rank {
            continue;
        }
        for i in j..nt {
            let mut t = vec![0.0; ts * ts];
            for r in 0..ts {
                for c in 0..ts {
                    t[r * ts + c] = a[(i * ts + r) * n + (j * ts + c)];
                }
            }
            tiles.insert((i, j), t);
        }
    }

    for k in 0..nt {
        let owner = column_owner(k, p);
        // Panel factorisation at the owner: potrf + column trsm.
        let panel: Vec<Vec<f64>> = if rank == owner {
            let akk = tiles.get_mut(&(k, k)).expect("owner holds (k,k)");
            potrf(akk, ts);
            charge(m, node, "potrf", ts).await;
            let lkk = tiles[&(k, k)].clone();
            for i in k + 1..nt {
                let b = tiles.get_mut(&(i, k)).expect("owner holds (i,k)");
                trsm(&lkk, b, ts);
                charge(m, node, "trsm", ts).await;
            }
            (k..nt).map(|i| tiles[&(i, k)].clone()).collect()
        } else {
            Vec::new()
        };

        // Broadcast the factored panel (rows k..nt of column k).
        let payload = if rank == owner {
            Value::List(Rc::new(
                panel.iter().map(|t| Value::vec(t.clone())).collect(),
            ))
        } else {
            Value::Unit
        };
        let bytes = ((nt - k) * ts * ts * 8) as u64;
        let received = m.bcast(comm, owner, payload, bytes).await;
        let panel: Vec<Vec<f64>> = received
            .as_list()
            .iter()
            .map(|v| v.as_vec().to_vec())
            .collect();
        // panel[i - k] is tile (i, k) of L.

        // Trailing update on my columns j ∈ (k, nt).
        for j in k + 1..nt {
            if column_owner(j, p) != rank {
                continue;
            }
            let lj = &panel[j - k];
            // Diagonal: syrk.
            let cjj = tiles.get_mut(&(j, j)).expect("owner holds (j,j)");
            syrk(lj, cjj, ts);
            charge(m, node, "syrk", ts).await;
            // Below diagonal: gemm.
            for i in j + 1..nt {
                let li = panel[i - k].clone();
                let cij = tiles.get_mut(&(i, j)).expect("owner holds (i,j)");
                gemm_nt(&li, lj, cij, ts);
                charge(m, node, "gemm", ts).await;
            }
        }
    }

    // Verification: gather the factor at rank 0 (column by column to keep
    // message sizes bounded) and check L·Lᵀ against A.
    const TAG_GATHER: u32 = 2302;
    let mut max_error = 0.0f64;
    if rank == 0 {
        let mut l = vec![0.0f64; n * n];
        for j in 0..nt {
            let owner = column_owner(j, p);
            let col: Vec<Vec<f64>> = if owner == 0 {
                (j..nt).map(|i| tiles[&(i, j)].clone()).collect()
            } else {
                let msg = m.recv(comm, Some(owner), Some(TAG_GATHER)).await;
                msg.value
                    .as_list()
                    .iter()
                    .map(|v| v.as_vec().to_vec())
                    .collect()
            };
            for (off, t) in col.iter().enumerate() {
                let i = j + off;
                for r in 0..ts {
                    for c in 0..ts {
                        l[(i * ts + r) * n + (j * ts + c)] = t[r * ts + c];
                    }
                }
            }
        }
        // Zero strict upper of diagonal tiles is handled by potrf already.
        max_error = crate::cholesky::factorisation_error(&l, &a, n);
    } else {
        for j in 0..nt {
            if column_owner(j, p) != rank {
                continue;
            }
            let col: Vec<Value> = (j..nt)
                .map(|i| Value::vec(tiles[&(i, j)].clone()))
                .collect();
            let bytes = ((nt - j) * ts * ts * 8) as u64;
            m.send(comm, 0, TAG_GATHER, Value::List(Rc::new(col)), bytes)
                .await;
        }
    }

    DCholeskyResult {
        max_error,
        panels: nt,
    }
}

/// Driver over an ideal wire; returns (rank-0 result, elapsed ns).
pub fn run_dcholesky_ideal(
    seed: u64,
    n_ranks: u32,
    nt: usize,
    ts: usize,
) -> (DCholeskyResult, u64) {
    use deep_psmpi::{launch_world, EpId, IdealWire, MpiParams, Universe};
    use std::cell::Cell;

    let mut sim = deep_simkit::Simulation::new(seed);
    let ctx = sim.handle();
    let wire = Rc::new(IdealWire::new(
        &ctx,
        deep_simkit::SimDuration::micros(1),
        6e9,
    ));
    let uni = Universe::new(&ctx, wire, n_ranks as usize, MpiParams::default());
    let out = Rc::new(Cell::new(DCholeskyResult {
        max_error: f64::NAN,
        panels: 0,
    }));
    let out2 = out.clone();
    launch_world(&uni, "dchol", (0..n_ranks).map(EpId).collect(), move |m| {
        let out = out2.clone();
        Box::pin(async move {
            let comm = m.world().clone();
            let node = NodeModel::xeon_phi_knc();
            let res = cholesky_distributed(&m, &comm, nt, ts, &node).await;
            if m.rank() == 0 {
                out.set(res);
            }
        })
    });
    sim.run().assert_completed();
    (out.get(), sim.now().as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ownership_cycles() {
        assert_eq!(column_owner(0, 3), 0);
        assert_eq!(column_owner(1, 3), 1);
        assert_eq!(column_owner(2, 3), 2);
        assert_eq!(column_owner(3, 3), 0);
        assert_eq!(column_owner(7, 1), 0);
    }

    #[test]
    fn distributed_factorisation_is_correct_for_any_rank_count() {
        for ranks in [1u32, 2, 3, 4, 5] {
            let (res, _) = run_dcholesky_ideal(1, ranks, 6, 8);
            assert!(
                res.max_error < 1e-9,
                "ranks={ranks}: error {}",
                res.max_error
            );
            assert_eq!(res.panels, 6);
        }
    }

    #[test]
    fn more_ranks_factor_faster() {
        // Strong scaling with coarse 64x64 tiles. A 1-D block-cyclic
        // right-looking factorisation without lookahead serialises every
        // panel at its owner, so the textbook expectation is a modest
        // speedup (trailing update parallelises, panels do not) — we
        // assert the shape, not linearity: 4 ranks clearly beat 1, and
        // the measured ratio sits between the trailing-update bound and
        // the fully-serial bound.
        let (_, t1) = run_dcholesky_ideal(1, 1, 8, 64);
        let (_, t4) = run_dcholesky_ideal(1, 4, 8, 64);
        let ratio = t4 as f64 / t1 as f64;
        assert!(
            (0.35..0.85).contains(&ratio),
            "t1={t1} t4={t4} ratio={ratio}: expected the 1-D panel-bound regime"
        );
    }

    #[test]
    fn speedup_saturates_at_panel_serialisation() {
        // With as many ranks as columns, the panel critical path binds:
        // doubling ranks beyond that gains nothing.
        let (_, t6) = run_dcholesky_ideal(1, 6, 6, 16);
        let (_, t12) = run_dcholesky_ideal(1, 12, 6, 16);
        assert!((t12 as f64) > (t6 as f64) * 0.9, "t6={t6} t12={t12}");
    }
}
