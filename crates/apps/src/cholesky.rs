//! Tiled Cholesky factorisation — the paper's OmpSs showcase (slide 23).
//!
//! The task kernels (`potrf`, `trsm`, `gemm`, `syrk`) operate on real
//! `f64` tiles, so the runtime's out-of-order execution is verified
//! numerically: after all tasks ran, `L·Lᵀ` must reproduce the input
//! matrix. The graph builder declares exactly the `input`/`inout` accesses
//! of the slide's pragmas.

use std::cell::RefCell;
use std::rc::Rc;

use deep_hw::KernelProfile;
use deep_ompss::{Access, RegionId, TaskCost, TaskGraph};

/// A shared square tile of size `ts × ts`, row-major.
pub type Tile = Rc<RefCell<Vec<f64>>>;

/// A symmetric positive-definite test matrix of order `n`:
/// `a[i][j] = 1/(1+|i−j|)` plus `n` on the diagonal (diagonally dominant).
pub fn spd_matrix(n: usize) -> Vec<f64> {
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
        }
        a[i * n + i] += n as f64;
    }
    a
}

/// Serial reference Cholesky (lower), in place. Panics if not SPD.
pub fn reference_cholesky(a: &mut [f64], n: usize) {
    for k in 0..n {
        let mut d = a[k * n + k];
        for p in 0..k {
            d -= a[k * n + p] * a[k * n + p];
        }
        assert!(d > 0.0, "matrix is not positive definite at {k}");
        let d = d.sqrt();
        a[k * n + k] = d;
        for i in k + 1..n {
            let mut s = a[i * n + k];
            for p in 0..k {
                s -= a[i * n + p] * a[k * n + p];
            }
            a[i * n + k] = s / d;
        }
    }
    // Zero the strict upper triangle for cleanliness.
    for i in 0..n {
        for j in i + 1..n {
            a[i * n + j] = 0.0;
        }
    }
}

/// In-place tile Cholesky (lower) of a `ts × ts` tile.
pub fn potrf(a: &mut [f64], ts: usize) {
    for k in 0..ts {
        let mut d = a[k * ts + k];
        for p in 0..k {
            d -= a[k * ts + p] * a[k * ts + p];
        }
        assert!(d > 0.0, "tile not positive definite");
        let d = d.sqrt();
        a[k * ts + k] = d;
        for i in k + 1..ts {
            let mut s = a[i * ts + k];
            for p in 0..k {
                s -= a[i * ts + p] * a[k * ts + p];
            }
            a[i * ts + k] = s / d;
        }
    }
    for i in 0..ts {
        for j in i + 1..ts {
            a[i * ts + j] = 0.0;
        }
    }
}

/// Triangular solve `B ← B · L⁻ᵀ` where `l` is the lower factor tile.
pub fn trsm(l: &[f64], b: &mut [f64], ts: usize) {
    for r in 0..ts {
        for c in 0..ts {
            let mut s = b[r * ts + c];
            for p in 0..c {
                s -= b[r * ts + p] * l[c * ts + p];
            }
            b[r * ts + c] = s / l[c * ts + c];
        }
    }
}

/// `C ← C − A·Bᵀ`.
pub fn gemm_nt(a: &[f64], b: &[f64], c: &mut [f64], ts: usize) {
    for r in 0..ts {
        for s in 0..ts {
            let mut acc = 0.0;
            for p in 0..ts {
                acc += a[r * ts + p] * b[s * ts + p];
            }
            c[r * ts + s] -= acc;
        }
    }
}

/// Symmetric rank-k update `C ← C − A·Aᵀ` (lower part only).
pub fn syrk(a: &[f64], c: &mut [f64], ts: usize) {
    for r in 0..ts {
        for s in 0..=r {
            let mut acc = 0.0;
            for p in 0..ts {
                acc += a[r * ts + p] * a[s * ts + p];
            }
            c[r * ts + s] -= acc;
        }
    }
}

/// A tiled matrix: `nt × nt` tiles of `ts × ts` doubles.
pub struct TiledMatrix {
    /// Tiles in row-major tile order; upper-triangle tiles unused.
    pub tiles: Vec<Tile>,
    /// Tiles per side.
    pub nt: usize,
    /// Elements per tile side.
    pub ts: usize,
}

impl TiledMatrix {
    /// Split a dense `n × n` matrix (`n = nt·ts`) into tiles.
    pub fn from_dense(a: &[f64], nt: usize, ts: usize) -> TiledMatrix {
        let n = nt * ts;
        assert_eq!(a.len(), n * n);
        let mut tiles = Vec::with_capacity(nt * nt);
        for ti in 0..nt {
            for tj in 0..nt {
                let mut t = vec![0.0; ts * ts];
                for r in 0..ts {
                    for c in 0..ts {
                        t[r * ts + c] = a[(ti * ts + r) * n + (tj * ts + c)];
                    }
                }
                tiles.push(Rc::new(RefCell::new(t)));
            }
        }
        TiledMatrix { tiles, nt, ts }
    }

    /// Reassemble the dense matrix.
    pub fn to_dense(&self) -> Vec<f64> {
        let n = self.nt * self.ts;
        let mut a = vec![0.0; n * n];
        for ti in 0..self.nt {
            for tj in 0..self.nt {
                let t = self.tiles[ti * self.nt + tj].borrow();
                for r in 0..self.ts {
                    for c in 0..self.ts {
                        a[(ti * self.ts + r) * n + (tj * self.ts + c)] = t[r * self.ts + c];
                    }
                }
            }
        }
        a
    }

    /// The tile at block row `i`, block column `j`.
    pub fn tile(&self, i: usize, j: usize) -> Tile {
        self.tiles[i * self.nt + j].clone()
    }
}

/// Roofline profile of one tile kernel on a `ts × ts` tile.
pub fn kernel_profile(kind: &str, ts: usize) -> KernelProfile {
    let t = ts as f64;
    let (flops, eff) = match kind {
        "potrf" => (t * t * t / 3.0, 0.5),
        "trsm" => (t * t * t, 0.7),
        "gemm" => (2.0 * t * t * t, 0.85),
        "syrk" => (t * t * t, 0.75),
        other => panic!("unknown kernel {other}"),
    };
    KernelProfile {
        flops,
        bytes: 3.0 * t * t * 8.0,
        compute_efficiency: eff,
        bandwidth_efficiency: 0.8,
    }
}

/// Cost profiles for the four kernels on `ts × ts` tiles.
pub fn kernel_cost(kind: &str, ts: usize) -> TaskCost {
    TaskCost::Kernel {
        profile: kernel_profile(kind, ts),
        cores: 1,
    }
}

/// Build the OmpSs task graph of the right-looking tiled Cholesky of `m`,
/// with bodies mutating the real tiles. Phases are set for the fork-join
/// baseline: (3k) potrf, (3k+1) trsm panel, (3k+2) trailing update.
pub fn cholesky_graph(m: &TiledMatrix) -> TaskGraph {
    let nt = m.nt;
    let ts = m.ts;
    let mut g = TaskGraph::new();
    for k in 0..nt {
        let akk = m.tile(k, k);
        g.add_task(
            format!("potrf({k},{k})"),
            &[(RegionId::tile(k as u64, k as u64), Access::InOut)],
            kernel_cost("potrf", ts),
            (3 * k) as u32,
            Some(Box::new(move || potrf(&mut akk.borrow_mut(), ts))),
        );
        for i in k + 1..nt {
            let l = m.tile(k, k);
            let b = m.tile(i, k);
            g.add_task(
                format!("trsm({i},{k})"),
                &[
                    (RegionId::tile(k as u64, k as u64), Access::In),
                    (RegionId::tile(i as u64, k as u64), Access::InOut),
                ],
                kernel_cost("trsm", ts),
                (3 * k + 1) as u32,
                Some(Box::new(move || trsm(&l.borrow(), &mut b.borrow_mut(), ts))),
            );
        }
        for i in k + 1..nt {
            for j in k + 1..i {
                let a = m.tile(i, k);
                let b = m.tile(j, k);
                let c = m.tile(i, j);
                g.add_task(
                    format!("gemm({i},{j},{k})"),
                    &[
                        (RegionId::tile(i as u64, k as u64), Access::In),
                        (RegionId::tile(j as u64, k as u64), Access::In),
                        (RegionId::tile(i as u64, j as u64), Access::InOut),
                    ],
                    kernel_cost("gemm", ts),
                    (3 * k + 2) as u32,
                    Some(Box::new(move || {
                        gemm_nt(&a.borrow(), &b.borrow(), &mut c.borrow_mut(), ts)
                    })),
                );
            }
            let a = m.tile(i, k);
            let c = m.tile(i, i);
            g.add_task(
                format!("syrk({i},{k})"),
                &[
                    (RegionId::tile(i as u64, k as u64), Access::In),
                    (RegionId::tile(i as u64, i as u64), Access::InOut),
                ],
                kernel_cost("syrk", ts),
                (3 * k + 2) as u32,
                Some(Box::new(move || syrk(&a.borrow(), &mut c.borrow_mut(), ts))),
            );
        }
    }
    g
}

/// Max absolute error of `L·Lᵀ` against `a` (lower triangle).
pub fn factorisation_error(l: &[f64], a: &[f64], n: usize) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..=i {
            let mut s = 0.0;
            for p in 0..=j {
                s += l[i * n + p] * l[j * n + p];
            }
            worst = worst.max((s - a[i * n + j]).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_cholesky_factors_spd() {
        let n = 24;
        let a = spd_matrix(n);
        let mut l = a.clone();
        reference_cholesky(&mut l, n);
        assert!(factorisation_error(&l, &a, n) < 1e-9);
    }

    #[test]
    fn tile_kernels_match_reference_on_one_tile() {
        let ts = 16;
        let a = spd_matrix(ts);
        let mut by_tile = a.clone();
        potrf(&mut by_tile, ts);
        let mut by_ref = a.clone();
        reference_cholesky(&mut by_ref, ts);
        for (x, y) in by_tile.iter().zip(by_ref.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn tiled_roundtrip_preserves_matrix() {
        let (nt, ts) = (3, 8);
        let a = spd_matrix(nt * ts);
        let m = TiledMatrix::from_dense(&a, nt, ts);
        assert_eq!(m.to_dense(), a);
    }

    #[test]
    fn graph_task_count_matches_formula() {
        let (nt, ts) = (4usize, 4usize);
        let a = spd_matrix(nt * ts);
        let m = TiledMatrix::from_dense(&a, nt, ts);
        let g = cholesky_graph(&m);
        // potrf: nt; trsm: nt(nt-1)/2; syrk: nt(nt-1)/2; gemm: C(nt,3)-ish
        let potrf_n = nt;
        let trsm_n = nt * (nt - 1) / 2;
        let syrk_n = nt * (nt - 1) / 2;
        let gemm_n = nt * (nt - 1) * (nt - 2) / 6;
        assert_eq!(g.len(), potrf_n + trsm_n + syrk_n + gemm_n);
    }

    #[test]
    fn serial_body_execution_produces_correct_factor() {
        // Run the graph bodies in plain topological order (no simulator):
        // the dependence tracking itself must already serialise correctly.
        let (nt, ts) = (4usize, 8usize);
        let n = nt * ts;
        let a = spd_matrix(n);
        let m = TiledMatrix::from_dense(&a, nt, ts);
        let g = cholesky_graph(&m);
        let order = g.topo_order();
        // Execute bodies by draining the graph in topo order.
        let mut graph = g;
        for t in order {
            if let Some(body) = graph.take_body(t) {
                body();
            }
        }
        let l = m.to_dense();
        let err = factorisation_error(&l, &a, n);
        assert!(err < 1e-9, "factorisation error {err}");
    }
}
