//! Property-based numerical tests: the tiled Cholesky pipeline and the
//! distributed CG solver must agree with their serial references for
//! arbitrary problem shapes.

use deep_apps::cholesky::{
    cholesky_graph, factorisation_error, reference_cholesky, spd_matrix, TiledMatrix,
};
use deep_apps::{cg_reference, run_cg_ideal, run_jacobi_ideal};
use deep_hw::NodeModel;
use deep_ompss::run_dataflow;
use deep_simkit::Simulation;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Dataflow-scheduled tiled Cholesky factorises exactly for any tile
    /// geometry and worker count.
    #[test]
    fn tiled_cholesky_always_factorises(
        nt in 1usize..6,
        ts in 2usize..10,
        workers in 1u32..16,
    ) {
        let n = nt * ts;
        let a = spd_matrix(n);
        let m = TiledMatrix::from_dense(&a, nt, ts);
        let g = cholesky_graph(&m);
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let node = NodeModel::xeon_phi_knc();
        let h = sim.spawn("run", async move { run_dataflow(&ctx, g, &node, workers).await });
        sim.run().assert_completed();
        prop_assert!(h.try_result().is_some());
        let err = factorisation_error(&m.to_dense(), &a, n);
        prop_assert!(err < 1e-8, "nt={nt} ts={ts} workers={workers}: err {err}");

        // And it matches the serial reference on the lower triangle (the
        // above-diagonal tiles are untouched workspace, as in LAPACK).
        let mut reference = a.clone();
        reference_cholesky(&mut reference, n);
        let tiled = m.to_dense();
        for i in 0..n {
            for j in 0..=i {
                let (x, y) = (tiled[i * n + j], reference[i * n + j]);
                prop_assert!((x - y).abs() < 1e-8, "L[{i}][{j}]: {x} vs {y}");
            }
        }
    }

    /// Distributed CG matches the serial CG checksum for any grid and
    /// rank count.
    #[test]
    fn distributed_cg_matches_serial(
        nx in 4usize..20,
        ny in 4usize..20,
        ranks in 1u32..7,
    ) {
        let serial = cg_reference(nx, ny, 400, 1e-7);
        let (dist, _) = run_cg_ideal(1, ranks, nx, ny, 400, 1e-7);
        prop_assert!(dist.residual < 1e-6, "converged: {}", dist.residual);
        prop_assert!(
            (dist.checksum - serial.checksum).abs()
                <= 1e-5 * serial.checksum.abs().max(1.0),
            "nx={nx} ny={ny} ranks={ranks}: {} vs {}",
            dist.checksum,
            serial.checksum
        );
    }

    /// Jacobi is rank-count invariant: the physics cannot depend on the
    /// decomposition.
    #[test]
    fn jacobi_rank_invariant(
        nx in 4usize..16,
        ny in 4usize..16,
        ranks in 2u32..6,
    ) {
        let (one, _) = run_jacobi_ideal(1, 1, nx, ny, 500, 1e-8);
        let (many, _) = run_jacobi_ideal(1, ranks, nx, ny, 500, 1e-8);
        prop_assert_eq!(one.sweeps, many.sweeps);
        prop_assert!(
            (one.checksum - many.checksum).abs() < 1e-6,
            "checksums {} vs {}",
            one.checksum,
            many.checksum
        );
    }
}
