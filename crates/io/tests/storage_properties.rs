//! Cross-module properties of the storage stack: determinism of the
//! DES models and the multi-level commit-log safety invariant.

use std::rc::Rc;

use deep_fabric::{ExtollFabric, IbFabric, NodeId};
use deep_io::{
    BridgeNode, CheckpointManager, CkptLevel, CommitLog, DeviceSpec, FailureSeverity, FileLayer,
    FileLayerParams, ParallelFs, PfsConfig, WritePattern,
};
use deep_simkit::{Sim, SimTime, Simulation};
use proptest::prelude::*;

fn build_manager(sim: &Sim, ranks: usize) -> Rc<CheckpointManager> {
    let extoll = Rc::new(ExtollFabric::new(sim, (2, 2, 2)));
    let ib = Rc::new(IbFabric::new(sim, 4));
    let pfs = ParallelFs::new(sim, ib, &[NodeId(2), NodeId(3)], &PfsConfig::default());
    CheckpointManager::new(
        sim,
        extoll,
        pfs,
        (0..ranks as u32).map(NodeId).collect(),
        vec![BridgeNode {
            torus: NodeId(7),
            ib: NodeId(0),
        }],
        DeviceSpec::nvm(),
    )
}

/// One full storage exercise: an I/O phase on the file layer plus an
/// L1/L2/L3 checkpoint cycle with a restore. Returns the trace.
fn storage_scenario(seed: u64) -> (Vec<(SimTime, String)>, SimTime) {
    let mut sim = Simulation::new(seed);
    sim.enable_tracing();
    let ctx = sim.handle();

    let ib = Rc::new(IbFabric::new(&ctx, 8));
    let pfs = ParallelFs::new(&ctx, ib, &[NodeId(6), NodeId(7)], &PfsConfig::default());
    let layer = FileLayer::new(&ctx, pfs, FileLayerParams::default());
    let mgr = build_manager(&ctx, 4);

    let l = layer.clone();
    let m = mgr.clone();
    sim.spawn("scenario", async move {
        let clients: Vec<NodeId> = (0..4).map(NodeId).collect();
        l.write_phase(&clients, 2 << 20, WritePattern::Sion).await;
        l.write_phase(&clients, 2 << 20, WritePattern::TaskLocal)
            .await;
        m.checkpoint(CkptLevel::L1Local, 4 << 20, 1).await;
        m.checkpoint(CkptLevel::L2Partner, 4 << 20, 2).await;
        m.checkpoint(CkptLevel::L3Pfs, 4 << 20, 3).await;
        m.fail(FailureSeverity::NodeLoss);
        m.restore(4 << 20).await;
    });
    sim.run().assert_completed();
    let end = sim.now();
    (sim.take_trace(), end)
}

#[test]
fn identical_seeds_give_identical_traces() {
    let (trace_a, end_a) = storage_scenario(42);
    let (trace_b, end_b) = storage_scenario(42);
    assert_eq!(end_a, end_b, "end times must match");
    assert_eq!(trace_a.len(), trace_b.len(), "trace lengths must match");
    assert_eq!(trace_a, trace_b, "event traces must be identical");
}

#[test]
fn restore_after_node_loss_lands_on_l2() {
    let mut sim = Simulation::new(9);
    let ctx = sim.handle();
    let mgr = build_manager(&ctx, 4);
    let m = mgr.clone();
    let h = sim.spawn("cycle", async move {
        m.checkpoint(CkptLevel::L3Pfs, 1 << 20, 5).await;
        m.checkpoint(CkptLevel::L2Partner, 1 << 20, 8).await;
        m.checkpoint(CkptLevel::L1Local, 1 << 20, 9).await;
        m.fail(FailureSeverity::NodeLoss);
        m.restore(1 << 20).await
    });
    sim.run().assert_completed();
    let op = h.try_result().unwrap().expect("recoverable");
    assert_eq!(op.level, CkptLevel::L2Partner);
    assert_eq!(op.mark, 8, "newest surviving mark wins");
}

// ---------------------------------------------------------------------
// CommitLog safety: a committed checkpoint is never lost to a failure
// its level survives, under arbitrary interleavings of commits and
// failures.

#[derive(Debug, Clone, Copy)]
enum LogOp {
    Commit(CkptLevel, u64),
    Fail(FailureSeverity),
}

fn op_strategy() -> impl Strategy<Value = LogOp> {
    (0u8..6u8, 1u64..1000u64).prop_map(|(kind, mark)| match kind {
        0 => LogOp::Commit(CkptLevel::L1Local, mark),
        1 => LogOp::Commit(CkptLevel::L2Partner, mark),
        2 => LogOp::Commit(CkptLevel::L3Pfs, mark),
        3 => LogOp::Fail(FailureSeverity::Transient),
        4 => LogOp::Fail(FailureSeverity::NodeLoss),
        _ => LogOp::Fail(FailureSeverity::MultiNodeLoss),
    })
}

proptest! {
    /// Replaying any op sequence: after the final op, every level that
    /// survived all failures since its last commit still reports a mark,
    /// and `best()` is exactly the max over surviving levels.
    #[test]
    fn committed_levels_survive_what_they_should(
        ops in prop::collection::vec(op_strategy(), 0..40)
    ) {
        let mut log = CommitLog::new();
        // Shadow model: per level, the newest mark committed since the
        // last failure that level does not survive.
        let mut shadow: [Option<u64>; 3] = [None; 3];
        for op in &ops {
            match *op {
                LogOp::Commit(level, mark) => {
                    log.commit(level, mark);
                    let idx = level as usize;
                    shadow[idx] = Some(shadow[idx].map_or(mark, |m| m.max(mark)));
                }
                LogOp::Fail(sev) => {
                    log.fail(sev);
                    for level in CkptLevel::ALL {
                        if !level.survives(sev) {
                            shadow[level as usize] = None;
                        }
                    }
                }
            }
        }
        for level in CkptLevel::ALL {
            prop_assert_eq!(log.latest(level), shadow[level as usize]);
        }
        let expect_best = shadow.iter().flatten().copied().max();
        prop_assert_eq!(log.best().map(|(_, m)| m), expect_best);
    }

    /// An L3 commit is indestructible: no failure sequence can make the
    /// log unrecoverable once the PFS holds a checkpoint.
    #[test]
    fn l3_commit_is_never_lost(
        mark in 1u64..1000u64,
        ops in prop::collection::vec(op_strategy(), 0..40)
    ) {
        let mut log = CommitLog::new();
        log.commit(CkptLevel::L3Pfs, mark);
        for op in &ops {
            if let LogOp::Fail(sev) = *op {
                log.fail(sev);
            }
        }
        let (_, best) = log.best().expect("L3 survives everything");
        prop_assert!(best >= mark);
    }
}
