//! SIONlib-style aggregated file layer: N-to-N, N-to-1, and SION
//! write patterns over a [`ParallelFs`].
//!
//! The three patterns model the I/O idioms DEEP-ER measured:
//!
//! * **TaskLocal (N-to-N)** — one physical file per rank. No write
//!   locking, but every rank pays a metadata create on the (single)
//!   metadata server, which serialises at scale.
//! * **SharedFile (N-to-1)** — all ranks write one POSIX shared file.
//!   Every block needs an offset/lock grant from the metadata server
//!   (serialised), and unaligned blocks are padded to the FS alignment
//!   (write amplification) — the classic shared-file collapse.
//! * **Sion** — one physical container, one *collective* open that
//!   pre-computes per-rank chunk offsets; afterwards every rank writes
//!   its own aligned chunk lock-free, with task-local performance.

use std::cell::RefCell;
use std::rc::Rc;

use deep_fabric::NodeId;
use deep_simkit::{join_all, Semaphore, Sim, SimDuration};

use crate::pfs::ParallelFs;

/// Which file organisation a write phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePattern {
    /// N-to-N: one file per rank.
    TaskLocal,
    /// N-to-1: one shared POSIX file, per-block lock + alignment padding.
    SharedFile,
    /// SIONlib: one container, collective open, aligned per-rank chunks.
    Sion,
}

impl WritePattern {
    /// Stable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            WritePattern::TaskLocal => "task-local (N-N)",
            WritePattern::SharedFile => "shared-file (N-1)",
            WritePattern::Sion => "SIONlib",
        }
    }
}

/// Tunables of the file layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileLayerParams {
    /// Metadata server processing time per operation (create, lock grant).
    pub meta_service: SimDuration,
    /// Payload of one metadata request/response message.
    pub meta_msg_bytes: u64,
    /// Shared-file block size: each lock grant covers one block.
    pub shared_block_bytes: u64,
    /// FS alignment: shared-file blocks are padded to a multiple of this.
    pub align_bytes: u64,
}

impl Default for FileLayerParams {
    fn default() -> Self {
        FileLayerParams {
            meta_service: SimDuration::micros(200),
            meta_msg_bytes: 256,
            shared_block_bytes: 4 << 20,
            align_bytes: 1 << 20,
        }
    }
}

/// Result of one collective write phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoPhaseStats {
    /// Wall time of the whole phase (first open → last close).
    pub elapsed: SimDuration,
    /// Payload bytes requested by the application.
    pub payload_bytes: u64,
    /// Bytes physically written, including alignment padding.
    pub physical_bytes: u64,
    /// Metadata operations performed.
    pub meta_ops: u64,
}

impl IoPhaseStats {
    /// Application-visible aggregate throughput, bytes/second.
    pub fn goodput_bps(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.payload_bytes as f64 / self.elapsed.as_secs_f64()
    }
}

/// A file layer bound to a PFS and its metadata server.
pub struct FileLayer {
    sim: Sim,
    pfs: Rc<ParallelFs>,
    /// The metadata server lives on the first PFS server node.
    meta_node: NodeId,
    /// Serialises metadata-server operations (it is one machine).
    meta_lock: Semaphore,
    params: FileLayerParams,
    meta_ops: RefCell<u64>,
}

impl FileLayer {
    /// Bind to a PFS (metadata is served by the first PFS server).
    pub fn new(sim: &Sim, pfs: Rc<ParallelFs>, params: FileLayerParams) -> Rc<FileLayer> {
        let meta_node = pfs.server_nodes()[0];
        Rc::new(FileLayer {
            sim: sim.clone(),
            pfs,
            meta_node,
            meta_lock: Semaphore::new(sim, 1),
            params,
            meta_ops: RefCell::new(0),
        })
    }

    /// The underlying PFS.
    pub fn pfs(&self) -> &Rc<ParallelFs> {
        &self.pfs
    }

    /// One metadata round trip from `client`: request over IB, serialised
    /// service at the metadata server, response back.
    async fn meta_op(self: &Rc<Self>, client: NodeId) {
        let guard = self.meta_lock.acquire().await;
        self.pfs
            .ib()
            .send(client, self.meta_node, self.params.meta_msg_bytes)
            .await
            .expect("metadata request");
        self.sim.sleep(self.params.meta_service).await;
        self.pfs
            .ib()
            .send(self.meta_node, client, self.params.meta_msg_bytes)
            .await
            .expect("metadata response");
        guard.release();
        *self.meta_ops.borrow_mut() += 1;
    }

    fn align_up(&self, bytes: u64) -> u64 {
        let a = self.params.align_bytes.max(1);
        bytes.div_ceil(a) * a
    }

    /// Run one collective write phase: every client writes
    /// `bytes_per_rank` under the given pattern. Suspends until the
    /// slowest rank finishes; returns phase statistics.
    pub async fn write_phase(
        self: &Rc<Self>,
        clients: &[NodeId],
        bytes_per_rank: u64,
        pattern: WritePattern,
    ) -> IoPhaseStats {
        let start = self.sim.now();
        let meta_before = *self.meta_ops.borrow();
        let mut physical = 0u64;

        if pattern == WritePattern::Sion {
            // One collective open: a single metadata op computes every
            // rank's chunk offset (rank 0 performs it on behalf of all).
            self.meta_op(clients[0]).await;
        }

        let mut handles = Vec::with_capacity(clients.len());
        for (i, &client) in clients.iter().enumerate() {
            let layer = self.clone();
            let per_rank_physical = match pattern {
                // Task-local and SION chunks are aligned once per rank.
                WritePattern::TaskLocal | WritePattern::Sion => self.align_up(bytes_per_rank),
                // Shared-file blocks are padded individually below.
                WritePattern::SharedFile => {
                    let full = bytes_per_rank / self.params.shared_block_bytes;
                    let tail = bytes_per_rank % self.params.shared_block_bytes;
                    full * self.align_up(self.params.shared_block_bytes)
                        + if tail > 0 { self.align_up(tail) } else { 0 }
                }
            };
            physical += per_rank_physical;
            handles.push(
                self.sim
                    .spawn(format!("io-{}-r{i}", pattern.name()), async move {
                        match pattern {
                            WritePattern::TaskLocal => {
                                // Create this rank's file, then stream it out.
                                layer.meta_op(client).await;
                                layer
                                    .pfs
                                    .write(client, layer.align_up(bytes_per_rank))
                                    .await;
                            }
                            WritePattern::Sion => {
                                // Offsets already known: pure aligned streaming.
                                layer
                                    .pfs
                                    .write(client, layer.align_up(bytes_per_rank))
                                    .await;
                            }
                            WritePattern::SharedFile => {
                                let mut left = bytes_per_rank;
                                while left > 0 {
                                    let block = left.min(layer.params.shared_block_bytes);
                                    // Offset/lock grant from the metadata server,
                                    // then the padded block itself.
                                    layer.meta_op(client).await;
                                    layer.pfs.write(client, layer.align_up(block)).await;
                                    left -= block;
                                }
                            }
                        }
                    }),
            );
        }
        join_all(handles).await;

        IoPhaseStats {
            elapsed: self.sim.now() - start,
            payload_bytes: bytes_per_rank * clients.len() as u64,
            physical_bytes: physical,
            meta_ops: *self.meta_ops.borrow() - meta_before,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfs::PfsConfig;
    use deep_fabric::IbFabric;
    use deep_simkit::Simulation;

    fn phase_with(
        pattern: WritePattern,
        ranks: u32,
        bytes: u64,
        params: FileLayerParams,
    ) -> IoPhaseStats {
        let mut sim = Simulation::new(7);
        let ctx = sim.handle();
        let hosts = ranks + 2;
        let ib = Rc::new(IbFabric::new(&ctx, hosts));
        let servers: Vec<NodeId> = (ranks..hosts).map(NodeId).collect();
        let pfs = ParallelFs::new(&ctx, ib, &servers, &PfsConfig::default());
        let layer = FileLayer::new(&ctx, pfs, params);
        let clients: Vec<NodeId> = (0..ranks).map(NodeId).collect();
        let l = layer.clone();
        let h = sim.spawn("phase", async move {
            l.write_phase(&clients, bytes, pattern).await
        });
        sim.run().assert_completed();
        h.try_result().unwrap()
    }

    fn phase(pattern: WritePattern, ranks: u32, bytes: u64) -> IoPhaseStats {
        phase_with(pattern, ranks, bytes, FileLayerParams::default())
    }

    #[test]
    fn sion_beats_shared_file() {
        // Small application blocks (512 KiB) against a 1 MiB FS
        // alignment: the shared file pays a lock grant per block plus
        // padding on every block, while SION packs aligned chunks.
        let params = FileLayerParams {
            shared_block_bytes: 1 << 19,
            ..FileLayerParams::default()
        };
        let sion = phase_with(WritePattern::Sion, 8, 8 << 20, params);
        let shared = phase_with(WritePattern::SharedFile, 8, 8 << 20, params);
        assert!(
            sion.goodput_bps() > shared.goodput_bps(),
            "SION {} vs shared {}",
            sion.goodput_bps(),
            shared.goodput_bps()
        );
    }

    #[test]
    fn sion_needs_one_metadata_op() {
        let sion = phase(WritePattern::Sion, 8, 4 << 20);
        assert_eq!(sion.meta_ops, 1);
        let local = phase(WritePattern::TaskLocal, 8, 4 << 20);
        assert_eq!(local.meta_ops, 8);
        let shared = phase(WritePattern::SharedFile, 8, 4 << 20);
        assert!(shared.meta_ops >= 8, "one lock per block per rank");
    }

    #[test]
    fn shared_file_amplifies_writes() {
        // 1.5 MiB per rank: padded to 2 MiB task-local, and per 4-MiB
        // block (here: one padded block) in the shared file.
        let shared = phase(WritePattern::SharedFile, 4, (3 << 20) / 2);
        assert!(shared.physical_bytes > shared.payload_bytes);
    }
}
