//! Static storage-hierarchy configuration and its JSON form.

use deep_json::{object, Value};
use deep_simkit::SimDuration;

use crate::device::DeviceSpec;
use crate::pfs::PfsConfig;
use crate::sion::FileLayerParams;

/// The storage side of a DEEP machine: per-node NVM, the shared PFS, and
/// the file-layer tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageConfig {
    /// Node-local NVM on every booster node.
    pub local: DeviceSpec,
    /// Shared parallel file system behind the cluster fabric.
    pub pfs: PfsConfig,
    /// SIONlib-style file-layer parameters.
    pub file_layer: FileLayerParams,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            local: DeviceSpec::nvm(),
            pfs: PfsConfig::default(),
            file_layer: FileLayerParams::default(),
        }
    }
}

fn device_to_json(d: &DeviceSpec) -> Value {
    object([
        ("name", d.name.as_str().into()),
        ("read_bps", d.read_bps.into()),
        ("write_bps", d.write_bps.into()),
        ("latency_us", (d.latency.as_nanos() as f64 / 1e3).into()),
        ("queue_depth", d.queue_depth.into()),
    ])
}

fn device_from_json(v: &Value) -> Option<DeviceSpec> {
    Some(DeviceSpec {
        name: v.get("name")?.as_str()?.to_string(),
        read_bps: v.get("read_bps")?.as_f64()?,
        write_bps: v.get("write_bps")?.as_f64()?,
        latency: SimDuration::from_secs_f64(v.get("latency_us")?.as_f64()? / 1e6),
        queue_depth: v.get("queue_depth")?.as_u64()? as u32,
    })
}

impl StorageConfig {
    /// Serialise to a JSON value (embeddable in a larger document).
    pub fn to_json_value(&self) -> Value {
        object([
            ("local", device_to_json(&self.local)),
            (
                "pfs",
                object([
                    ("n_servers", self.pfs.n_servers.into()),
                    ("stripe_bytes", self.pfs.stripe_bytes.into()),
                    ("server_device", device_to_json(&self.pfs.server_device)),
                ]),
            ),
            (
                "file_layer",
                object([
                    (
                        "meta_service_us",
                        (self.file_layer.meta_service.as_nanos() as f64 / 1e3).into(),
                    ),
                    ("meta_msg_bytes", self.file_layer.meta_msg_bytes.into()),
                    (
                        "shared_block_bytes",
                        self.file_layer.shared_block_bytes.into(),
                    ),
                    ("align_bytes", self.file_layer.align_bytes.into()),
                ]),
            ),
        ])
    }

    /// Serialise to pretty JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json_pretty()
    }

    /// Parse back from a JSON value produced by [`Self::to_json_value`].
    pub fn from_json_value(v: &Value) -> Option<StorageConfig> {
        let pfs = v.get("pfs")?;
        let fl = v.get("file_layer")?;
        Some(StorageConfig {
            local: device_from_json(v.get("local")?)?,
            pfs: PfsConfig {
                n_servers: pfs.get("n_servers")?.as_u64()? as u32,
                stripe_bytes: pfs.get("stripe_bytes")?.as_u64()?,
                server_device: device_from_json(pfs.get("server_device")?)?,
            },
            file_layer: FileLayerParams {
                meta_service: SimDuration::from_secs_f64(
                    fl.get("meta_service_us")?.as_f64()? / 1e6,
                ),
                meta_msg_bytes: fl.get("meta_msg_bytes")?.as_u64()?,
                shared_block_bytes: fl.get("shared_block_bytes")?.as_u64()?,
                align_bytes: fl.get("align_bytes")?.as_u64()?,
            },
        })
    }

    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Option<StorageConfig> {
        StorageConfig::from_json_value(&deep_json::from_str(text).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_config_json_roundtrip() {
        let cfg = StorageConfig::default();
        let text = cfg.to_json();
        let back = StorageConfig::from_json(&text).expect("parse back");
        assert_eq!(cfg, back);
    }

    #[test]
    fn roundtrip_preserves_non_default_values() {
        let mut cfg = StorageConfig::default();
        cfg.pfs.n_servers = 7;
        cfg.pfs.stripe_bytes = 2 << 20;
        cfg.local.write_bps = 3.3e9;
        cfg.file_layer.align_bytes = 4096;
        let back = StorageConfig::from_json(&cfg.to_json()).expect("parse back");
        assert_eq!(cfg, back);
    }
}
