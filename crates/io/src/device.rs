//! Block-device models: node-local NVM/NVMe and PFS server disk arrays.
//!
//! A [`BlockDevice`] is an analytic storage device on simulated time. It
//! has a submission queue of bounded depth (FIFO, like an NVMe SQ) and a
//! single media channel: requests acquire a queue slot, pay the device
//! latency, then occupy the media for `bytes / bandwidth`. The media keeps
//! a `busy_until` horizon exactly like a fabric link, so concurrent
//! writers contend and serialise deterministically (single-writer
//! contention), while the queue bound models the back-pressure a real
//! device exerts once its queue is full.

use std::cell::{Cell, RefCell};

use deep_simkit::{Semaphore, Sim, SimDuration, SimTime};

/// Static description of a storage device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Sustained read bandwidth, bytes/second.
    pub read_bps: f64,
    /// Sustained write bandwidth, bytes/second.
    pub write_bps: f64,
    /// Per-request access latency (submission → first byte).
    pub latency: SimDuration,
    /// Submission-queue depth (max in-flight requests).
    pub queue_depth: u32,
}

impl DeviceSpec {
    /// DEEP-ER node-local NVM (NVMe-class flash on the node):
    /// ~2.8 GB/s read, ~2.0 GB/s write, ~15 µs access latency.
    pub fn nvm() -> DeviceSpec {
        DeviceSpec {
            name: "node-local NVM".into(),
            read_bps: 2.8e9,
            write_bps: 2.0e9,
            latency: SimDuration::micros(15),
            queue_depth: 8,
        }
    }

    /// Disk array behind one PFS (BeeGFS-class) server: high capacity,
    /// ~1.6 GB/s read / ~1.2 GB/s write per server, ~500 µs latency.
    pub fn pfs_server_array() -> DeviceSpec {
        DeviceSpec {
            name: "PFS server disk array".into(),
            read_bps: 1.6e9,
            write_bps: 1.2e9,
            latency: SimDuration::micros(500),
            queue_depth: 64,
        }
    }
}

/// Counters accumulated over a device's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Bytes written so far.
    pub bytes_written: u64,
    /// Bytes read so far.
    pub bytes_read: u64,
    /// Completed requests (reads + writes).
    pub ops: u64,
}

/// A live block device on simulated time.
pub struct BlockDevice {
    sim: Sim,
    spec: DeviceSpec,
    queue: Semaphore,
    media_busy_until: Cell<SimTime>,
    stats: RefCell<DeviceStats>,
}

impl BlockDevice {
    /// Instantiate a device from its spec.
    pub fn new(sim: &Sim, spec: DeviceSpec) -> BlockDevice {
        let depth = spec.queue_depth.max(1) as u64;
        BlockDevice {
            sim: sim.clone(),
            spec,
            queue: Semaphore::new(sim, depth),
            media_busy_until: Cell::new(SimTime::ZERO),
            stats: RefCell::new(DeviceStats::default()),
        }
    }

    /// The device's static description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DeviceStats {
        *self.stats.borrow()
    }

    /// Write `bytes`, suspending until the device has absorbed them.
    /// Returns the request's total latency.
    pub async fn write(&self, bytes: u64) -> SimDuration {
        self.request(bytes, self.spec.write_bps, true).await
    }

    /// Read `bytes`, suspending until the last byte is delivered.
    pub async fn read(&self, bytes: u64) -> SimDuration {
        self.request(bytes, self.spec.read_bps, false).await
    }

    async fn request(&self, bytes: u64, bps: f64, is_write: bool) -> SimDuration {
        let start = self.sim.now();
        let slot = self.queue.acquire().await;
        // Access latency (command processing, seek/flash program setup).
        self.sim.sleep(self.spec.latency).await;
        // Media occupancy: FIFO behind whatever is already scheduled.
        let now = self.sim.now();
        let occupancy_start = now.max(self.media_busy_until.get());
        let xfer = SimDuration::from_secs_f64(bytes as f64 / bps);
        let done = occupancy_start + xfer;
        self.media_busy_until.set(done);
        self.sim.sleep_until(done).await;
        slot.release();
        let mut st = self.stats.borrow_mut();
        if is_write {
            st.bytes_written += bytes;
        } else {
            st.bytes_read += bytes;
        }
        st.ops += 1;
        self.sim.now() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_simkit::Simulation;
    use std::rc::Rc;

    fn dev(sim: &Sim) -> Rc<BlockDevice> {
        Rc::new(BlockDevice::new(
            sim,
            DeviceSpec {
                name: "test".into(),
                read_bps: 2e9,
                write_bps: 1e9,
                latency: SimDuration::micros(10),
                queue_depth: 4,
            },
        ))
    }

    #[test]
    fn uncontended_write_is_latency_plus_transfer() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let d = dev(&ctx);
        let h = sim.spawn("w", async move { d.write(1_000_000).await });
        sim.run().assert_completed();
        // 10 µs latency + 1 MB at 1 GB/s = 1 ms.
        assert_eq!(h.try_result().unwrap().as_nanos(), 10_000 + 1_000_000);
    }

    #[test]
    fn reads_are_faster_than_writes() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let d = dev(&ctx);
        let d2 = d.clone();
        let h = sim.spawn("rw", async move {
            let w = d2.write(1_000_000).await;
            let r = d2.read(1_000_000).await;
            (w, r)
        });
        sim.run().assert_completed();
        let (w, r) = h.try_result().unwrap();
        assert!(r < w, "read {r} should beat write {w}");
    }

    #[test]
    fn concurrent_writers_serialise_on_the_media() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let d = dev(&ctx);
        let mut handles = Vec::new();
        for i in 0..3 {
            let d = d.clone();
            handles.push(sim.spawn(format!("w{i}"), async move { d.write(1_000_000).await }));
        }
        sim.run().assert_completed();
        let times: Vec<u64> = handles
            .iter()
            .map(|h| h.try_result().unwrap().as_nanos())
            .collect();
        // The last writer waits behind two full media occupancies.
        let worst = *times.iter().max().unwrap();
        assert!(worst >= 3_000_000, "worst writer saw {worst} ns");
        assert_eq!(d.stats().bytes_written, 3_000_000);
        assert_eq!(d.stats().ops, 3);
    }

    #[test]
    fn queue_depth_bounds_inflight_requests() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let d = dev(&ctx); // depth 4
        for i in 0..6 {
            let d = d.clone();
            sim.spawn(format!("w{i}"), async move {
                d.write(1000).await;
            });
        }
        sim.run().assert_completed();
        assert_eq!(d.stats().ops, 6);
    }
}
