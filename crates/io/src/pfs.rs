//! Parallel file system: striped server nodes reached over InfiniBand.
//!
//! A [`ParallelFs`] is a set of server nodes, each owning a
//! [`BlockDevice`] disk array, attached to the *same* [`IbFabric`] the
//! cluster's MPI traffic uses — so PFS I/O contends with application
//! messages on the fat-tree links rather than travelling a magic side
//! channel. Client writes are striped round-robin across the servers in
//! `stripe_bytes` chunks; the chunk streams to each server pipeline, and
//! each server absorbs its share through its disk array.

use std::rc::Rc;

use deep_fabric::{IbFabric, NodeId};
use deep_simkit::{join_all, Sim, SimDuration};

use crate::device::{BlockDevice, DeviceSpec, DeviceStats};

/// Static PFS layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PfsConfig {
    /// Number of server nodes.
    pub n_servers: u32,
    /// Stripe size in bytes.
    pub stripe_bytes: u64,
    /// Disk array behind each server.
    pub server_device: DeviceSpec,
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            n_servers: 2,
            stripe_bytes: 1 << 20,
            server_device: DeviceSpec::pfs_server_array(),
        }
    }
}

struct PfsServer {
    node: NodeId,
    dev: Rc<BlockDevice>,
}

/// A live parallel file system.
pub struct ParallelFs {
    sim: Sim,
    ib: Rc<IbFabric>,
    servers: Vec<PfsServer>,
    stripe_bytes: u64,
}

impl ParallelFs {
    /// Attach servers at the given fabric endpoints. The endpoints must
    /// be valid hosts of `ib` (typically appended after the compute and
    /// booster-interface hosts).
    pub fn new(sim: &Sim, ib: Rc<IbFabric>, server_nodes: &[NodeId], cfg: &PfsConfig) -> Rc<Self> {
        assert!(!server_nodes.is_empty(), "a PFS needs at least one server");
        let servers = server_nodes
            .iter()
            .map(|&node| {
                assert!(
                    (node.0 as usize) < ib.num_nodes(),
                    "PFS server {node} outside the IB fabric"
                );
                PfsServer {
                    node,
                    dev: Rc::new(BlockDevice::new(sim, cfg.server_device.clone())),
                }
            })
            .collect();
        Rc::new(ParallelFs {
            sim: sim.clone(),
            ib,
            servers,
            stripe_bytes: cfg.stripe_bytes.max(4096),
        })
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// The InfiniBand fabric this PFS is attached to.
    pub fn ib(&self) -> &Rc<IbFabric> {
        &self.ib
    }

    /// The fabric endpoints of the servers.
    pub fn server_nodes(&self) -> Vec<NodeId> {
        self.servers.iter().map(|s| s.node).collect()
    }

    /// The block device of server `i` — fault injectors model a server
    /// stall as a background burst keeping this device busy.
    pub fn server_device(&self, i: usize) -> Rc<BlockDevice> {
        self.servers[i].dev.clone()
    }

    /// Aggregate device counters over all servers.
    pub fn stats(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for s in &self.servers {
            let st = s.dev.stats();
            total.bytes_written += st.bytes_written;
            total.bytes_read += st.bytes_read;
            total.ops += st.ops;
        }
        total
    }

    /// Stripe of `bytes` assigned to server `i` under round-robin
    /// striping starting at server 0.
    fn share(&self, i: usize, bytes: u64) -> u64 {
        let n = self.servers.len() as u64;
        let full = bytes / self.stripe_bytes;
        let rem = bytes % self.stripe_bytes;
        let i = i as u64;
        let mut share = (full / n + u64::from(i < full % n)) * self.stripe_bytes;
        if full % n == i && rem > 0 {
            share += rem;
        }
        share
    }

    /// Write `bytes` from `client`, striped across the servers; suspends
    /// until every server has absorbed its share. Returns the elapsed
    /// wall time of the whole operation.
    pub async fn write(self: &Rc<Self>, client: NodeId, bytes: u64) -> SimDuration {
        self.transfer_phase(client, bytes, true).await
    }

    /// Read `bytes` back to `client` (restore path).
    pub async fn read(self: &Rc<Self>, client: NodeId, bytes: u64) -> SimDuration {
        self.transfer_phase(client, bytes, false).await
    }

    async fn transfer_phase(
        self: &Rc<Self>,
        client: NodeId,
        bytes: u64,
        write: bool,
    ) -> SimDuration {
        let start = self.sim.now();
        let mut handles = Vec::with_capacity(self.servers.len());
        for i in 0..self.servers.len() {
            let share = self.share(i, bytes);
            if share == 0 {
                continue;
            }
            let fs = self.clone();
            handles.push(self.sim.spawn(
                format!("pfs-{}-s{i}", if write { "write" } else { "read" }),
                async move {
                    let server = &fs.servers[i];
                    let mut left = share;
                    while left > 0 {
                        let chunk = left.min(fs.stripe_bytes);
                        if write {
                            // Client → server over IB, then media absorb.
                            fs.ib
                                .rdma_write(client, server.node, chunk)
                                .await
                                .expect("pfs write transfer");
                            server.dev.write(chunk).await;
                        } else {
                            // Media fetch, then server → client over IB.
                            server.dev.read(chunk).await;
                            fs.ib
                                .rdma_write(server.node, client, chunk)
                                .await
                                .expect("pfs read transfer");
                        }
                        left -= chunk;
                    }
                },
            ));
        }
        join_all(handles).await;
        self.sim.now() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_simkit::Simulation;

    fn setup(sim: &Sim, hosts: u32, n_servers: u32) -> Rc<ParallelFs> {
        let ib = Rc::new(IbFabric::new(sim, hosts));
        let nodes: Vec<NodeId> = (hosts - n_servers..hosts).map(NodeId).collect();
        ParallelFs::new(
            sim,
            ib,
            &nodes,
            &PfsConfig {
                n_servers,
                ..PfsConfig::default()
            },
        )
    }

    #[test]
    fn striping_covers_all_bytes() {
        let sim = Simulation::new(1);
        let ctx = sim.handle();
        let fs = setup(&ctx, 8, 3);
        for bytes in [1u64, 4096, 1 << 20, (7 << 20) + 123] {
            let total: u64 = (0..3).map(|i| fs.share(i, bytes)).sum();
            assert_eq!(total, bytes, "striping must partition {bytes} bytes");
        }
    }

    #[test]
    fn write_lands_on_server_devices() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let fs = setup(&ctx, 8, 2);
        let f = fs.clone();
        let h = sim.spawn("w", async move { f.write(NodeId(0), 8 << 20).await });
        sim.run().assert_completed();
        assert_eq!(fs.stats().bytes_written, 8 << 20);
        let elapsed = h.try_result().unwrap();
        // 8 MiB over 2 servers at 1.2 GB/s each ≈ 3.5 ms of pure media
        // time. Each 1 MiB stripe additionally pays its IB hop and the
        // 500 µs device latency before the media absorbs it (the chunks
        // of one stream do not overlap), so allow up to 3x the floor.
        let expect = (4 << 20) as f64 / 1.2e9;
        let got = elapsed.as_secs_f64();
        assert!(
            got > expect && got < expect * 3.0,
            "elapsed {got}s vs device floor {expect}s"
        );
    }

    #[test]
    fn more_servers_mean_more_aggregate_bandwidth() {
        let wall = |servers: u32| {
            let mut sim = Simulation::new(1);
            let ctx = sim.handle();
            let fs = setup(&ctx, 16, servers);
            // Four clients writing concurrently.
            for c in 0..4u32 {
                let fs = fs.clone();
                sim.spawn(format!("c{c}"), async move {
                    fs.write(NodeId(c), 16 << 20).await;
                });
            }
            sim.run().assert_completed();
            sim.now().as_nanos()
        };
        let one = wall(1);
        let four = wall(4);
        assert!(
            four * 2 < one,
            "4 servers should be >2x faster: {one} vs {four}"
        );
    }

    #[test]
    fn read_roundtrip_returns_bytes() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let fs = setup(&ctx, 8, 2);
        let f = fs.clone();
        sim.spawn("rw", async move {
            f.write(NodeId(1), 4 << 20).await;
            f.read(NodeId(1), 4 << 20).await;
        });
        sim.run().assert_completed();
        let st = fs.stats();
        assert_eq!(st.bytes_written, 4 << 20);
        assert_eq!(st.bytes_read, 4 << 20);
    }
}
