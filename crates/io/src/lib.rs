//! # deep-io — storage hierarchy and multi-level checkpointing (DEEP-ER)
//!
//! The DEEP-ER follow-on project added a storage hierarchy to the
//! cluster-booster architecture: node-local NVM, SIONlib task-local I/O,
//! and SCR-style multi-level checkpointing. This crate models that stack
//! on top of `deep-simkit` and `deep-fabric`:
//!
//! * [`device::BlockDevice`] — analytic NVM / disk-array model with
//!   bounded queue depth and single-writer media contention;
//! * [`pfs::ParallelFs`] — striped PFS servers attached to the *same*
//!   InfiniBand fabric as MPI traffic, so I/O and communication contend;
//! * [`sion::FileLayer`] — N-to-N, N-to-1, and SIONlib write patterns
//!   with metadata-server serialisation and alignment padding;
//! * [`ckptlog::CommitLog`] — pure failure-level-aware checkpoint
//!   bookkeeping (which level survives which failure severity);
//! * [`checkpoint::CheckpointManager`] — the DES-driven L1/L2/L3
//!   checkpoint + restore engine over NVM, EXTOLL buddies, and the PFS;
//! * [`config::StorageConfig`] — static description, JSON round-trip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod ckptlog;
pub mod config;
pub mod device;
pub mod pfs;
pub mod sion;

pub use checkpoint::{BridgeNode, CheckpointManager, CkptOp};
pub use ckptlog::{CkptLevel, CommitLog, FailureSeverity};
pub use config::StorageConfig;
pub use device::{BlockDevice, DeviceSpec, DeviceStats};
pub use pfs::{ParallelFs, PfsConfig};
pub use sion::{FileLayer, FileLayerParams, IoPhaseStats, WritePattern};
