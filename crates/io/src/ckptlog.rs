//! Pure multi-level checkpoint bookkeeping (no simulated time).
//!
//! The SCR-style invariant lives here, separated from the DES plumbing so
//! it can be property-tested exhaustively: a checkpoint committed at a
//! level that *survives* a failure severity must be recoverable after any
//! sequence of failures of at most that severity.

/// Where a checkpoint's replica lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CkptLevel {
    /// L1: node-local NVM. Fast; lost with the node.
    L1Local,
    /// L2: partner/buddy copy on another node. Survives single-node loss.
    L2Partner,
    /// L3: parallel file system. Survives multi-node loss.
    L3Pfs,
}

impl CkptLevel {
    /// All levels, cheapest first.
    pub const ALL: [CkptLevel; 3] = [CkptLevel::L1Local, CkptLevel::L2Partner, CkptLevel::L3Pfs];

    /// Stable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            CkptLevel::L1Local => "L1 local NVM",
            CkptLevel::L2Partner => "L2 buddy",
            CkptLevel::L3Pfs => "L3 PFS",
        }
    }

    fn index(&self) -> usize {
        *self as usize
    }

    /// Does a replica at this level survive a failure of this severity?
    pub fn survives(&self, severity: FailureSeverity) -> bool {
        match severity {
            // Process crash / transient: all storage intact.
            FailureSeverity::Transient => true,
            // One node (and its NVM + its buddy copies *of others*) gone;
            // this job's L1 copy on the failed node is lost, the partner
            // copy on the surviving buddy is not.
            FailureSeverity::NodeLoss => *self >= CkptLevel::L2Partner,
            // Several nodes at once (rack/PSU): buddy pairs can both die,
            // only the PFS copy is guaranteed.
            FailureSeverity::MultiNodeLoss => *self == CkptLevel::L3Pfs,
        }
    }
}

/// How much of the machine a failure takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureSeverity {
    /// Process-level fault; all storage survives.
    Transient,
    /// A single node (with its local NVM) is lost.
    NodeLoss,
    /// Multiple nodes fail together (buddy pairs included).
    MultiNodeLoss,
}

impl FailureSeverity {
    /// All severities, mildest first.
    pub const ALL: [FailureSeverity; 3] = [
        FailureSeverity::Transient,
        FailureSeverity::NodeLoss,
        FailureSeverity::MultiNodeLoss,
    ];
}

/// Tracks, per level, the newest committed checkpoint's work mark.
///
/// Marks are opaque monotone progress counters (the resilience model uses
/// "seconds of completed work"; tests use integers).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommitLog {
    latest: [Option<u64>; 3],
}

impl CommitLog {
    /// Empty log: nothing committed anywhere.
    pub fn new() -> CommitLog {
        CommitLog::default()
    }

    /// Record a checkpoint committed at `level` with progress `mark`.
    /// A level only ever moves forward (a newer checkpoint replaces the
    /// older one on the same storage).
    pub fn commit(&mut self, level: CkptLevel, mark: u64) {
        let slot = &mut self.latest[level.index()];
        *slot = Some(slot.map_or(mark, |m| m.max(mark)));
    }

    /// Apply a failure: every replica level that does not survive the
    /// severity is invalidated.
    pub fn fail(&mut self, severity: FailureSeverity) {
        for level in CkptLevel::ALL {
            if !level.survives(severity) {
                self.latest[level.index()] = None;
            }
        }
    }

    /// Latest committed mark still present at `level`.
    pub fn latest(&self, level: CkptLevel) -> Option<u64> {
        self.latest[level.index()]
    }

    /// The best recovery candidate: the newest surviving mark, restored
    /// from the cheapest level that holds it.
    pub fn best(&self) -> Option<(CkptLevel, u64)> {
        let newest = self.latest.iter().flatten().copied().max()?;
        let level = CkptLevel::ALL
            .into_iter()
            .find(|l| self.latest[l.index()] == Some(newest))
            .expect("some level holds the newest mark");
        Some((level, newest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_prefers_newest_then_cheapest() {
        let mut log = CommitLog::new();
        log.commit(CkptLevel::L3Pfs, 10);
        log.commit(CkptLevel::L1Local, 30);
        log.commit(CkptLevel::L2Partner, 30);
        // Newest mark 30 exists at L1 and L2; L1 is cheaper.
        assert_eq!(log.best(), Some((CkptLevel::L1Local, 30)));
        log.fail(FailureSeverity::NodeLoss);
        assert_eq!(log.best(), Some((CkptLevel::L2Partner, 30)));
        log.fail(FailureSeverity::MultiNodeLoss);
        assert_eq!(log.best(), Some((CkptLevel::L3Pfs, 10)));
    }

    #[test]
    fn l1_only_cannot_recover_from_node_loss() {
        let mut log = CommitLog::new();
        log.commit(CkptLevel::L1Local, 100);
        log.fail(FailureSeverity::NodeLoss);
        assert_eq!(log.best(), None);
    }

    #[test]
    fn transient_failures_lose_nothing() {
        let mut log = CommitLog::new();
        log.commit(CkptLevel::L1Local, 7);
        log.fail(FailureSeverity::Transient);
        assert_eq!(log.best(), Some((CkptLevel::L1Local, 7)));
    }

    #[test]
    fn commits_are_monotone() {
        let mut log = CommitLog::new();
        log.commit(CkptLevel::L3Pfs, 20);
        log.commit(CkptLevel::L3Pfs, 5); // stale write-back must not regress
        assert_eq!(log.latest(CkptLevel::L3Pfs), Some(20));
    }
}
