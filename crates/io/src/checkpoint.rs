//! SCR-style multi-level checkpoint manager on simulated time.
//!
//! One [`CheckpointManager`] serves a booster job of `n` ranks. Each rank
//! owns a node-local NVM [`BlockDevice`] (L1). Level 2 additionally
//! replicates the checkpoint to a buddy rank's NVM over the EXTOLL torus,
//! so it survives the loss of either partner. Level 3 drains the state
//! through a booster-interface bridge onto the [`ParallelFs`], paying the
//! torus hop to the bridge *and* the InfiniBand path to the servers — the
//! full DEEP-ER storage hierarchy.
//!
//! Recovery consults the [`CommitLog`]: after a failure of a given
//! severity, the newest checkpoint on the cheapest *surviving* level is
//! restored over the reverse path.

use std::cell::RefCell;
use std::rc::Rc;

use deep_fabric::{ExtollFabric, NodeId};
use deep_simkit::{join_all, Sim, SimDuration};

use crate::ckptlog::{CkptLevel, CommitLog, FailureSeverity};
use crate::device::{BlockDevice, DeviceSpec};
use crate::pfs::ParallelFs;

/// A booster-interface bridge: its endpoint on the EXTOLL torus and its
/// endpoint on the InfiniBand fabric the PFS lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeNode {
    /// The bridge's node id on the booster torus.
    pub torus: NodeId,
    /// The bridge's host id on the IB fabric.
    pub ib: NodeId,
}

/// Result of one checkpoint or restore operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CkptOp {
    /// Level the data was written to / read from.
    pub level: CkptLevel,
    /// Work mark the operation carried.
    pub mark: u64,
    /// Wall time from first rank starting to last rank finishing.
    pub elapsed: SimDuration,
}

/// Multi-level checkpoint manager for one booster job.
pub struct CheckpointManager {
    sim: Sim,
    extoll: Rc<ExtollFabric>,
    pfs: Rc<ParallelFs>,
    /// Torus endpoint of each rank.
    rank_nodes: Vec<NodeId>,
    /// Node-local NVM of each rank.
    locals: Vec<Rc<BlockDevice>>,
    /// Booster-interface bridges used by L3 traffic (round-robin).
    bridges: Vec<BridgeNode>,
    log: RefCell<CommitLog>,
}

impl CheckpointManager {
    /// Create a manager for ranks pinned at `rank_nodes` on the torus,
    /// each with a local device of `local_spec`, draining L3 traffic
    /// through `bridges` onto `pfs`.
    pub fn new(
        sim: &Sim,
        extoll: Rc<ExtollFabric>,
        pfs: Rc<ParallelFs>,
        rank_nodes: Vec<NodeId>,
        bridges: Vec<BridgeNode>,
        local_spec: DeviceSpec,
    ) -> Rc<CheckpointManager> {
        assert!(rank_nodes.len() >= 2, "need at least 2 ranks for buddies");
        assert!(!bridges.is_empty(), "need at least one BI bridge for L3");
        for &n in &rank_nodes {
            assert!(
                (n.0 as usize) < extoll.num_nodes(),
                "rank node {n} outside the torus"
            );
        }
        let locals = rank_nodes
            .iter()
            .map(|_| Rc::new(BlockDevice::new(sim, local_spec.clone())))
            .collect();
        Rc::new(CheckpointManager {
            sim: sim.clone(),
            extoll,
            pfs,
            rank_nodes,
            locals,
            bridges,
            log: RefCell::new(CommitLog::new()),
        })
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.rank_nodes.len()
    }

    /// The rank's L2 partner: XOR pairing (0↔1, 2↔3, …), falling back to
    /// ring order for a trailing odd rank.
    pub fn buddy(&self, rank: usize) -> usize {
        let n = self.rank_nodes.len();
        let b = rank ^ 1;
        if b < n {
            b
        } else {
            (rank + 1) % n
        }
    }

    fn bridge(&self, rank: usize) -> BridgeNode {
        self.bridges[rank % self.bridges.len()]
    }

    /// The rank's node-local device (for external inspection).
    pub fn local_device(&self, rank: usize) -> &Rc<BlockDevice> {
        &self.locals[rank]
    }

    /// Snapshot of the commit log.
    pub fn log(&self) -> CommitLog {
        self.log.borrow().clone()
    }

    /// Take a checkpoint of `bytes_per_rank` per rank at `level`, tagging
    /// it with progress `mark`. Suspends until the slowest rank has
    /// committed; only then is the mark recorded (a checkpoint interrupted
    /// mid-write is worthless).
    pub async fn checkpoint(
        self: &Rc<Self>,
        level: CkptLevel,
        bytes_per_rank: u64,
        mark: u64,
    ) -> CkptOp {
        let start = self.sim.now();
        let mut handles = Vec::with_capacity(self.n_ranks());
        for rank in 0..self.n_ranks() {
            let mgr = self.clone();
            handles.push(
                self.sim
                    .spawn(format!("ckpt-{}-r{rank}", level.name()), async move {
                        match level {
                            CkptLevel::L1Local => {
                                mgr.locals[rank].write(bytes_per_rank).await;
                            }
                            CkptLevel::L2Partner => {
                                // Local copy first, then push a replica to the
                                // buddy's NVM across the torus.
                                mgr.locals[rank].write(bytes_per_rank).await;
                                let buddy = mgr.buddy(rank);
                                mgr.extoll
                                    .rma_put(
                                        mgr.rank_nodes[rank],
                                        mgr.rank_nodes[buddy],
                                        bytes_per_rank,
                                    )
                                    .await
                                    .expect("L2 replica transfer");
                                mgr.locals[buddy].write(bytes_per_rank).await;
                            }
                            CkptLevel::L3Pfs => {
                                // Torus hop to the booster interface, then the
                                // bridge streams onto the PFS over InfiniBand.
                                let bridge = mgr.bridge(rank);
                                mgr.extoll
                                    .rma_put(mgr.rank_nodes[rank], bridge.torus, bytes_per_rank)
                                    .await
                                    .expect("L3 drain to bridge");
                                mgr.pfs.write(bridge.ib, bytes_per_rank).await;
                            }
                        }
                    }),
            );
        }
        join_all(handles).await;
        self.log.borrow_mut().commit(level, mark);
        CkptOp {
            level,
            mark,
            elapsed: self.sim.now() - start,
        }
    }

    /// Apply a failure of the given severity: replicas on levels that do
    /// not survive it are invalidated.
    pub fn fail(&self, severity: FailureSeverity) {
        self.log.borrow_mut().fail(severity);
    }

    /// Restore from the newest surviving checkpoint (cheapest level that
    /// holds it), pulling `bytes_per_rank` back to every rank over the
    /// reverse of the write path. Returns `None` if no level survived.
    pub async fn restore(self: &Rc<Self>, bytes_per_rank: u64) -> Option<CkptOp> {
        let (level, mark) = self.log.borrow().best()?;
        let start = self.sim.now();
        let mut handles = Vec::with_capacity(self.n_ranks());
        for rank in 0..self.n_ranks() {
            let mgr = self.clone();
            handles.push(
                self.sim
                    .spawn(format!("restore-{}-r{rank}", level.name()), async move {
                        match level {
                            CkptLevel::L1Local => {
                                mgr.locals[rank].read(bytes_per_rank).await;
                            }
                            CkptLevel::L2Partner => {
                                // The rank's own node (and NVM) may be fresh after
                                // a node loss: pull the replica back from the
                                // buddy's NVM across the torus.
                                let buddy = mgr.buddy(rank);
                                mgr.locals[buddy].read(bytes_per_rank).await;
                                mgr.extoll
                                    .rma_put(
                                        mgr.rank_nodes[buddy],
                                        mgr.rank_nodes[rank],
                                        bytes_per_rank,
                                    )
                                    .await
                                    .expect("L2 restore transfer");
                            }
                            CkptLevel::L3Pfs => {
                                let bridge = mgr.bridge(rank);
                                mgr.pfs.read(bridge.ib, bytes_per_rank).await;
                                mgr.extoll
                                    .rma_put(bridge.torus, mgr.rank_nodes[rank], bytes_per_rank)
                                    .await
                                    .expect("L3 restore from bridge");
                            }
                        }
                    }),
            );
        }
        join_all(handles).await;
        Some(CkptOp {
            level,
            mark,
            elapsed: self.sim.now() - start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfs::PfsConfig;
    use deep_fabric::IbFabric;
    use deep_simkit::Simulation;

    fn setup(sim: &Sim, ranks: usize) -> Rc<CheckpointManager> {
        let extoll = Rc::new(ExtollFabric::new(sim, (2, 2, 2)));
        let ib = Rc::new(IbFabric::new(sim, 4));
        let servers: Vec<NodeId> = vec![NodeId(2), NodeId(3)];
        let pfs = ParallelFs::new(sim, ib, &servers, &PfsConfig::default());
        CheckpointManager::new(
            sim,
            extoll,
            pfs,
            (0..ranks as u32).map(NodeId).collect(),
            vec![BridgeNode {
                torus: NodeId(7),
                ib: NodeId(0),
            }],
            DeviceSpec::nvm(),
        )
    }

    fn run_levels(ranks: usize, bytes: u64) -> [SimDuration; 3] {
        let mut sim = Simulation::new(11);
        let ctx = sim.handle();
        let mgr = setup(&ctx, ranks);
        let m = mgr.clone();
        let h = sim.spawn("ckpts", async move {
            let l1 = m.checkpoint(CkptLevel::L1Local, bytes, 1).await.elapsed;
            let l2 = m.checkpoint(CkptLevel::L2Partner, bytes, 2).await.elapsed;
            let l3 = m.checkpoint(CkptLevel::L3Pfs, bytes, 3).await.elapsed;
            [l1, l2, l3]
        });
        sim.run().assert_completed();
        h.try_result().unwrap()
    }

    #[test]
    fn level_costs_are_ordered() {
        let [l1, l2, l3] = run_levels(4, 32 << 20);
        assert!(l1 < l2, "L1 {l1} should beat L2 {l2}");
        assert!(l2 < l3, "L2 {l2} should beat L3 {l3}");
    }

    #[test]
    fn l1_writes_land_on_local_nvm() {
        let mut sim = Simulation::new(3);
        let ctx = sim.handle();
        let mgr = setup(&ctx, 4);
        let m = mgr.clone();
        sim.spawn("c", async move {
            m.checkpoint(CkptLevel::L1Local, 1 << 20, 1).await;
        });
        sim.run().assert_completed();
        for rank in 0..4 {
            assert_eq!(mgr.local_device(rank).stats().bytes_written, 1 << 20);
        }
    }

    #[test]
    fn l2_survives_node_loss_l1_does_not() {
        let mut sim = Simulation::new(5);
        let ctx = sim.handle();
        let mgr = setup(&ctx, 4);
        let m = mgr.clone();
        let h = sim.spawn("cycle", async move {
            m.checkpoint(CkptLevel::L2Partner, 4 << 20, 10).await;
            m.checkpoint(CkptLevel::L1Local, 4 << 20, 20).await;
            m.fail(FailureSeverity::NodeLoss);
            m.restore(4 << 20).await
        });
        sim.run().assert_completed();
        let op = h.try_result().unwrap().expect("L2 must survive");
        assert_eq!(op.level, CkptLevel::L2Partner);
        assert_eq!(op.mark, 10);
    }

    #[test]
    fn multi_node_loss_needs_l3() {
        let mut sim = Simulation::new(5);
        let ctx = sim.handle();
        let mgr = setup(&ctx, 4);
        let m = mgr.clone();
        let h = sim.spawn("cycle", async move {
            m.checkpoint(CkptLevel::L2Partner, 1 << 20, 10).await;
            m.fail(FailureSeverity::MultiNodeLoss);
            let lost = m.restore(1 << 20).await;
            m.checkpoint(CkptLevel::L3Pfs, 1 << 20, 5).await;
            m.fail(FailureSeverity::MultiNodeLoss);
            let ok = m.restore(1 << 20).await;
            (lost, ok)
        });
        sim.run().assert_completed();
        let (lost, ok) = h.try_result().unwrap();
        assert!(lost.is_none(), "L2 must not survive multi-node loss");
        let ok = ok.expect("L3 survives");
        assert_eq!(ok.level, CkptLevel::L3Pfs);
        assert_eq!(ok.mark, 5);
    }

    #[test]
    fn buddy_pairing_is_symmetric() {
        let sim = Simulation::new(1);
        let ctx = sim.handle();
        let mgr = setup(&ctx, 4);
        for rank in 0..4 {
            assert_eq!(mgr.buddy(mgr.buddy(rank)), rank);
            assert_ne!(mgr.buddy(rank), rank);
        }
        drop(sim);
    }
}
