//! # deep-cbp — the Cluster–Booster Protocol
//!
//! Implements the bridge of slide 29: *Global MPI* traffic between the
//! InfiniBand cluster and the EXTOLL booster crosses **Booster Interface
//! (BI)** nodes. A BI owns an IB HCA on the cluster side and attaches to
//! an EXTOLL router's 7th link ("for general devices", slide 16) on the
//! booster side; its SMFU engine translates between the two protocols.
//!
//! [`CbpWire`] exposes the whole machine as a single MPI endpoint space
//! (`deep_psmpi::Wire`), so unchanged MPI code — including
//! `MPI_Comm_spawn` — runs across both sides:
//!
//! * cluster ↔ cluster — plain InfiniBand verbs;
//! * booster ↔ booster — plain EXTOLL (VELO/RMA);
//! * cluster ↔ booster — IB leg to a BI, SMFU translation, EXTOLL leg —
//!   with flow-hashed BI selection, optional striping of bulk transfers
//!   across every BI, and credit-based BI buffering (back-pressure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

use deep_fabric::{ExtollFabric, IbFabric, LinkFailure, NodeId, TransferStats};
use deep_psmpi::{EpId, LocalBoxFuture, Wire};
use deep_simkit::{join_all, Semaphore, Sim, SimDuration, TraceKey};

/// How cross-side flows pick their booster interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiSelect {
    /// Deterministic hash of (src, dst): zero coordination, static
    /// spreading (what EXTOLL's static routing gives you).
    FlowHash,
    /// Pick the BI with the most free buffer credits at send time —
    /// adaptive load balancing at the cost of global knowledge (an
    /// ablation of the protocol design space).
    LeastLoaded,
}

/// Retry/failover policy for bridged chunks.
///
/// A failed chunk (link retries exhausted, a crashed node on a leg, a
/// NIC drop, or an attempt timeout) is retried after exponential backoff
/// — `base_backoff · 2^(attempt−1)` — and each retry prefers a
/// *different, healthy* BI (failover). BIs whose IB host or EXTOLL entry
/// node is marked down are skipped entirely.
#[derive(Debug, Clone)]
pub struct CbpRetry {
    /// Total attempts per chunk (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: SimDuration,
    /// Optional per-attempt deadline (on `simkit::timeout`); an attempt
    /// that overruns it is abandoned and counts as failed.
    pub attempt_timeout: Option<SimDuration>,
}

impl Default for CbpRetry {
    fn default() -> Self {
        CbpRetry {
            max_attempts: 3,
            base_backoff: SimDuration::micros(10),
            attempt_timeout: None,
        }
    }
}

/// Counters for the bridge's fault handling.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CbpFaultStats {
    /// Chunk attempts that failed and were retried.
    pub retries: u64,
    /// Retries that moved to a different BI.
    pub failovers: u64,
    /// Attempts abandoned on the per-attempt deadline.
    pub timeouts: u64,
}

/// Placement and tuning of the bridge.
#[derive(Debug, Clone)]
pub struct CbpConfig {
    /// Cluster endpoints (IB hosts `0..n_cluster`).
    pub n_cluster: u32,
    /// Booster endpoints (EXTOLL nodes `0..n_booster`).
    pub n_booster: u32,
    /// Booster-interface placements: (IB host, EXTOLL entry node).
    /// The IB hosts listed here must not be used as cluster endpoints.
    pub bis: Vec<(u32, u32)>,
    /// Extra latency of the BI's 7th-link attachment per crossing.
    pub seventh_link_latency: SimDuration,
    /// In-flight bytes a BI can buffer before back-pressuring senders.
    pub bi_buffer_bytes: u64,
    /// Transfers at least this large are striped across all BIs.
    pub stripe_threshold: u64,
    /// BI selection policy for unstriped flows.
    pub bi_select: BiSelect,
    /// Retry/failover policy for bridged chunks.
    pub retry: CbpRetry,
}

impl CbpConfig {
    /// A reasonable default: buffer 8 MiB per BI, stripe ≥ 4 MiB.
    pub fn new(n_cluster: u32, n_booster: u32, bis: Vec<(u32, u32)>) -> Self {
        CbpConfig {
            n_cluster,
            n_booster,
            bis,
            seventh_link_latency: SimDuration::nanos(120),
            bi_buffer_bytes: 8 << 20,
            stripe_threshold: 4 << 20,
            bi_select: BiSelect::FlowHash,
            retry: CbpRetry::default(),
        }
    }
}

/// Per-BI traffic counters.
#[derive(Debug, Default, Clone)]
pub struct BiStats {
    /// Messages (or stripe chunks) bridged.
    pub messages: u64,
    /// Payload bytes bridged.
    pub bytes: u64,
}

struct BiState {
    ib_host: NodeId,
    entry: NodeId,
    credits: Semaphore,
    stats: RefCell<BiStats>,
}

/// The bridged wire over a whole DEEP machine.
pub struct CbpWire {
    sim: Sim,
    ib: Rc<IbFabric>,
    extoll: Rc<ExtollFabric>,
    cfg: CbpConfig,
    bis: Vec<Rc<BiState>>,
    bridged: RefCell<BiStats>,
    faults: RefCell<CbpFaultStats>,
    /// Pre-interned trace keys for the per-chunk retry path.
    k_retry: TraceKey,
    k_timeout: TraceKey,
}

/// Which side an endpoint lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// A cluster node (IB host).
    Cluster(NodeId),
    /// A booster node (EXTOLL torus node).
    Booster(NodeId),
}

impl CbpWire {
    /// Assemble the bridge. The IB fabric must have at least
    /// `n_cluster + bis.len()` hosts; the EXTOLL fabric at least
    /// `n_booster` nodes.
    pub fn new(sim: &Sim, ib: Rc<IbFabric>, extoll: Rc<ExtollFabric>, cfg: CbpConfig) -> Rc<Self> {
        assert!(!cfg.bis.is_empty(), "at least one booster interface");
        assert!(
            ib.num_nodes() as u32 >= cfg.n_cluster + cfg.bis.len() as u32,
            "IB fabric too small for cluster + BIs"
        );
        assert!(
            extoll.num_nodes() as u32 >= cfg.n_booster,
            "EXTOLL fabric too small for the booster"
        );
        for &(ib_host, entry) in &cfg.bis {
            assert!(
                ib_host >= cfg.n_cluster && ib_host < ib.num_nodes() as u32,
                "BI IB host {ib_host} must sit outside the cluster endpoint range"
            );
            assert!(entry < extoll.num_nodes() as u32, "BI entry node in range");
        }
        let bis = cfg
            .bis
            .iter()
            .map(|&(h, e)| {
                Rc::new(BiState {
                    ib_host: NodeId(h),
                    entry: NodeId(e),
                    credits: Semaphore::new(sim, cfg.bi_buffer_bytes),
                    stats: RefCell::new(BiStats::default()),
                })
            })
            .collect();
        Rc::new(CbpWire {
            sim: sim.clone(),
            ib,
            extoll,
            cfg,
            bis,
            bridged: RefCell::new(BiStats::default()),
            faults: RefCell::new(CbpFaultStats::default()),
            k_retry: sim.trace_key("cbp", "retry"),
            k_timeout: sim.trace_key("cbp", "timeout"),
        })
    }

    /// Total MPI endpoints (cluster then booster).
    pub fn num_endpoints(&self) -> u32 {
        self.cfg.n_cluster + self.cfg.n_booster
    }

    /// Endpoint id of cluster node `i`.
    pub fn cluster_ep(&self, i: u32) -> EpId {
        assert!(i < self.cfg.n_cluster);
        EpId(i)
    }

    /// Endpoint id of booster node `j`.
    pub fn booster_ep(&self, j: u32) -> EpId {
        assert!(j < self.cfg.n_booster);
        EpId(self.cfg.n_cluster + j)
    }

    /// Which side an endpoint lives on (and its fabric-local node).
    pub fn side_of(&self, ep: EpId) -> Side {
        if ep.0 < self.cfg.n_cluster {
            Side::Cluster(NodeId(ep.0))
        } else {
            let b = ep.0 - self.cfg.n_cluster;
            assert!(b < self.cfg.n_booster, "endpoint {ep:?} out of range");
            Side::Booster(NodeId(b))
        }
    }

    /// The underlying InfiniBand fabric.
    pub fn ib(&self) -> &Rc<IbFabric> {
        &self.ib
    }

    /// The underlying EXTOLL fabric.
    pub fn extoll(&self) -> &Rc<ExtollFabric> {
        &self.extoll
    }

    /// Bytes and messages that crossed the bridge so far.
    pub fn bridged_traffic(&self) -> BiStats {
        self.bridged.borrow().clone()
    }

    /// Per-BI traffic snapshot.
    pub fn bi_traffic(&self) -> Vec<BiStats> {
        self.bis.iter().map(|b| b.stats.borrow().clone()).collect()
    }

    /// Fault-handling counters (retries, failovers, timeouts).
    pub fn fault_stats(&self) -> CbpFaultStats {
        self.faults.borrow().clone()
    }

    /// The (IB host, EXTOLL entry) placement of each BI, for fault
    /// injectors that target BI nodes.
    pub fn bi_nodes(&self) -> Vec<(NodeId, NodeId)> {
        self.bis.iter().map(|b| (b.ib_host, b.entry)).collect()
    }

    /// True if BI `i` is currently usable (neither of its nodes down).
    pub fn bi_healthy(&self, i: usize) -> bool {
        let bi = &self.bis[i];
        !self.ib.is_node_down(bi.ib_host) && !self.extoll.is_node_down(bi.entry)
    }

    /// First healthy BI at or after `preferred + shift` (wrapping), or
    /// `None` if every BI is down.
    fn healthy_bi(&self, preferred: usize, shift: usize) -> Option<usize> {
        let n = self.bis.len();
        (0..n)
            .map(|k| (preferred + shift + k) % n)
            .find(|&i| self.bi_healthy(i))
    }

    /// Choose the BI for an unstriped flow, per the configured policy.
    fn bi_for_flow(&self, src: EpId, dst: EpId) -> usize {
        match self.cfg.bi_select {
            BiSelect::FlowHash => {
                let h = (src.0 as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((dst.0 as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                ((h >> 32) % self.bis.len() as u64) as usize
            }
            BiSelect::LeastLoaded => {
                let mut best = 0;
                let mut best_free = 0;
                for (i, bi) in self.bis.iter().enumerate() {
                    let free = bi.credits.available();
                    if free > best_free {
                        best_free = free;
                        best = i;
                    }
                }
                best
            }
        }
    }

    /// Carry one chunk, retrying with exponential backoff and failing
    /// over to another healthy BI per the configured [`CbpRetry`].
    async fn bridge_chunk(
        self: Rc<Self>,
        preferred: usize,
        from: Side,
        to: Side,
        bytes: u64,
    ) -> Result<TransferStats, LinkFailure> {
        let retry = self.cfg.retry.clone();
        let mut last_err = LinkFailure {
            link: LinkFailure::NO_LINK,
        };
        let mut prev_idx = None;
        for attempt in 0..retry.max_attempts.max(1) {
            // Rotate away from the BI that just failed us.
            let idx = match self.healthy_bi(preferred, attempt as usize) {
                Some(i) => i,
                None => {
                    self.sim
                        .emit("cbp", "no-bi", || "every BI is down".to_string());
                    return Err(last_err);
                }
            };
            if attempt > 0 {
                let backoff =
                    SimDuration::nanos(retry.base_backoff.as_nanos() << (attempt - 1).min(20));
                self.sim.sleep(backoff).await;
                self.faults.borrow_mut().retries += 1;
                if prev_idx.is_some_and(|p| p != idx) {
                    self.faults.borrow_mut().failovers += 1;
                }
                self.sim.emit_key(self.k_retry, || {
                    format!("attempt {} via BI {idx} after {last_err:?}", attempt + 1)
                });
            }
            prev_idx = Some(idx);
            let bi = self.bis[idx].clone();
            let once = self.clone().bridge_chunk_once(bi, from, to, bytes);
            let res = match retry.attempt_timeout {
                Some(t) => match self.sim.timeout(t, once).await {
                    Some(r) => r,
                    None => {
                        self.faults.borrow_mut().timeouts += 1;
                        self.sim.emit_key(self.k_timeout, || {
                            format!("chunk attempt {} via BI {idx} timed out", attempt + 1)
                        });
                        Err(LinkFailure {
                            link: LinkFailure::NO_LINK,
                        })
                    }
                },
                None => once.await,
            };
            match res {
                Ok(st) => return Ok(st),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Carry one chunk through one BI.
    ///
    /// The SMFU streams: the chunk is cut into pipeline segments; while
    /// segment *i* crosses the second fabric, segment *i+1* already
    /// occupies the first one. Credits (BI buffer space) are held per
    /// segment from first-leg start to second-leg completion, so a slow
    /// egress side back-pressures the ingress side.
    async fn bridge_chunk_once(
        self: Rc<Self>,
        bi: Rc<BiState>,
        from: Side,
        to: Side,
        bytes: u64,
    ) -> Result<TransferStats, LinkFailure> {
        const SEGMENT: u64 = 1 << 20;
        let start = self.sim.now();
        let translate = self.extoll.params().smfu_overhead + self.cfg.seventh_link_latency;
        let mut handles = Vec::new();
        let mut remaining = bytes.max(1);
        let mut first_leg_hops = 0;
        while remaining > 0 {
            let this = SEGMENT.min(remaining);
            remaining -= this;
            let credit = bi
                .credits
                .acquire_many(this.min(self.cfg.bi_buffer_bytes))
                .await;
            // First leg, serialized at the source by the fabric itself.
            let l1 = match (from, to) {
                (Side::Cluster(c), _) => self.ib.rdma_write(c, bi.ib_host, this).await?,
                (Side::Booster(b), _) => self.extoll.rma_put(b, bi.entry, this).await?,
            };
            first_leg_hops = first_leg_hops.max(l1.hops);
            // Translation + second leg overlap the next segment's first leg.
            let me = self.clone();
            let bi2 = bi.clone();
            handles.push(self.sim.spawn("cbp-segment", async move {
                me.sim.sleep(translate).await;
                let r = match (from, to) {
                    (_, Side::Booster(b)) => me.extoll.rma_put(bi2.entry, b, this).await,
                    (_, Side::Cluster(c)) => me.ib.rdma_write(bi2.ib_host, c, this).await,
                };
                drop(credit);
                r
            }));
        }
        let mut second_leg_hops = 0;
        for r in deep_simkit::join_all(handles).await {
            let l2 = r?;
            second_leg_hops = second_leg_hops.max(l2.hops);
        }
        {
            let mut s = bi.stats.borrow_mut();
            s.messages += 1;
            s.bytes += bytes;
        }
        Ok(TransferStats {
            elapsed: self.sim.now() - start,
            hops: first_leg_hops + second_leg_hops + 1,
            bytes,
            retransmissions: 0,
        })
    }

    async fn bridge(
        self: Rc<Self>,
        src: EpId,
        dst: EpId,
        bytes: u64,
    ) -> Result<TransferStats, LinkFailure> {
        let from = self.side_of(src);
        let to = self.side_of(dst);
        let start = self.sim.now();
        {
            let mut s = self.bridged.borrow_mut();
            s.messages += 1;
            s.bytes += bytes;
        }
        let n_bis = self.bis.len() as u64;
        if bytes >= self.cfg.stripe_threshold && n_bis > 1 {
            // Stripe the payload across every BI; complete at the slowest.
            let chunk = bytes.div_ceil(n_bis);
            let mut parts = Vec::with_capacity(n_bis as usize);
            let mut remaining = bytes;
            for i in 0..n_bis as usize {
                let this = chunk.min(remaining);
                remaining -= this;
                if this == 0 {
                    break;
                }
                let me = self.clone();
                parts.push(self.sim.spawn(format!("cbp-stripe{i}"), async move {
                    me.bridge_chunk(i, from, to, this).await
                }));
            }
            let results = join_all(parts).await;
            let mut hops = 0;
            for r in results {
                let st = r?;
                hops = hops.max(st.hops);
            }
            Ok(TransferStats {
                elapsed: self.sim.now() - start,
                hops,
                bytes,
                retransmissions: 0,
            })
        } else {
            let idx = self.bi_for_flow(src, dst);
            let mut st = self.clone().bridge_chunk(idx, from, to, bytes).await?;
            st.elapsed = self.sim.now() - start;
            Ok(st)
        }
    }
}

/// `Wire` over an `Rc<CbpWire>` so the universe can share the bridge.
pub struct CbpWireHandle(pub Rc<CbpWire>);

impl Wire for CbpWireHandle {
    fn transfer(
        &self,
        src: EpId,
        dst: EpId,
        bytes: u64,
    ) -> LocalBoxFuture<'_, Result<TransferStats, LinkFailure>> {
        let me = self.0.clone();
        Box::pin(async move {
            let from = me.side_of(src);
            let to = me.side_of(dst);
            match (from, to) {
                (Side::Cluster(a), Side::Cluster(b)) => me.ib.send(a, b, bytes).await,
                (Side::Booster(a), Side::Booster(b)) => me.extoll.send_auto(a, b, bytes).await,
                _ => me.bridge(src, dst, bytes).await,
            }
        })
    }

    fn name(&self) -> &str {
        "cbp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_simkit::Simulation;

    fn machine(sim: &Sim, n_cluster: u32, n_bi: u32, dims: (u32, u32, u32)) -> Rc<CbpWire> {
        let ib = Rc::new(IbFabric::new(sim, n_cluster + n_bi));
        let extoll = Rc::new(ExtollFabric::new(sim, dims));
        let n_booster = dims.0 * dims.1 * dims.2;
        // BI i: IB host n_cluster+i, EXTOLL entry spread along x.
        let bis = (0..n_bi)
            .map(|i| (n_cluster + i, (i * dims.0.max(1)) % n_booster))
            .collect();
        CbpWire::new(sim, ib, extoll, CbpConfig::new(n_cluster, n_booster, bis))
    }

    #[test]
    fn endpoint_mapping_roundtrips() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let w = machine(&ctx, 4, 2, (2, 2, 2));
        assert_eq!(w.num_endpoints(), 12);
        assert_eq!(w.side_of(w.cluster_ep(3)), Side::Cluster(NodeId(3)));
        assert_eq!(w.side_of(w.booster_ep(7)), Side::Booster(NodeId(7)));
        sim.run().assert_completed();
    }

    #[test]
    fn cross_side_transfer_pays_both_legs() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let w = machine(&ctx, 4, 1, (2, 2, 2));
        let handle = CbpWireHandle(w.clone());
        let src = w.cluster_ep(0);
        let dst = w.booster_ep(5);
        let h = sim.spawn("bridge", async move {
            handle.transfer(src, dst, 1 << 20).await.unwrap().elapsed
        });
        sim.run().assert_completed();
        let bridged = h.try_result().unwrap();
        // Lower bound: two serializations of 1 MiB at ~7 GB/s ≈ 300 us.
        assert!(
            bridged.as_secs_f64() > 0.00028,
            "bridged time {bridged} must cover both legs"
        );
        assert_eq!(w.bridged_traffic().messages, 1);
        assert_eq!(w.bridged_traffic().bytes, 1 << 20);
    }

    #[test]
    fn intra_side_traffic_does_not_touch_the_bridge() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let w = machine(&ctx, 4, 1, (2, 2, 2));
        let handle = CbpWireHandle(w.clone());
        let (c0, c1) = (w.cluster_ep(0), w.cluster_ep(1));
        let (b0, b1) = (w.booster_ep(0), w.booster_ep(1));
        sim.spawn("intra", async move {
            handle.transfer(c0, c1, 4096).await.unwrap();
            handle.transfer(b0, b1, 4096).await.unwrap();
        });
        sim.run().assert_completed();
        assert_eq!(w.bridged_traffic().messages, 0);
    }

    #[test]
    fn striping_across_bis_beats_a_single_bi_for_bulk() {
        fn bulk_time(n_bi: u32) -> f64 {
            let mut sim = Simulation::new(1);
            let ctx = sim.handle();
            let w = machine(&ctx, 4, n_bi, (4, 4, 4));
            let handle = CbpWireHandle(w.clone());
            let src = w.cluster_ep(0);
            let dst = w.booster_ep(9);
            let h = sim.spawn("bulk", async move {
                handle
                    .transfer(src, dst, 64 << 20)
                    .await
                    .unwrap()
                    .elapsed
                    .as_secs_f64()
            });
            sim.run().assert_completed();
            h.try_result().unwrap()
        }
        let one = bulk_time(1);
        let four = bulk_time(4);
        // The streaming SMFU already pipelines a single flow down to its
        // source-NIC floor, so striping cannot hurt a single flow...
        assert!(
            four <= one * 1.05,
            "striping must not slow a single flow: {one} vs {four}"
        );
        // ...and nothing beats the source NIC's injection bandwidth.
        let ib_leg_floor = (64u64 << 20) as f64 / 6.8e9;
        assert!(four > ib_leg_floor && one > ib_leg_floor);
        // The single-BI flow sits within 25% of that floor thanks to
        // segment pipelining (store-and-forward would be ~2x the floor).
        assert!(
            one < ib_leg_floor * 1.25,
            "pipelined bridge near the injection floor: {one} vs {ib_leg_floor}"
        );
    }

    #[test]
    fn many_flows_spread_over_bis() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let w = machine(&ctx, 8, 4, (4, 4, 4));
        for c in 0..8u32 {
            for b in 0..8u32 {
                let handle = CbpWireHandle(w.clone());
                let src = w.cluster_ep(c);
                let dst = w.booster_ep(b * 7); // scatter destinations
                sim.spawn(format!("f{c}-{b}"), async move {
                    handle.transfer(src, dst, 64 << 10).await.unwrap();
                });
            }
        }
        sim.run().assert_completed();
        let per_bi = w.bi_traffic();
        let used = per_bi.iter().filter(|s| s.messages > 0).count();
        assert!(used >= 3, "flow hashing should use most BIs, used {used}");
    }

    #[test]
    fn bi_credits_backpressure_limits_in_flight_bytes() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ib = Rc::new(IbFabric::new(&ctx, 5));
        let extoll = Rc::new(ExtollFabric::new(&ctx, (2, 2, 2)));
        let mut cfg = CbpConfig::new(4, 8, vec![(4, 0)]);
        cfg.bi_buffer_bytes = 1 << 20; // tiny BI buffer
        cfg.stripe_threshold = u64::MAX;
        let w = CbpWire::new(&ctx, ib, extoll, cfg);
        // Two 1 MiB messages from different senders: the second must wait
        // for the first one's credits before it can enter the BI.
        let mut times = Vec::new();
        for i in 0..2 {
            let handle = CbpWireHandle(w.clone());
            let src = w.cluster_ep(i);
            let dst = w.booster_ep(5);
            times.push(sim.spawn(format!("m{i}"), async move {
                handle
                    .transfer(src, dst, 1 << 20)
                    .await
                    .unwrap()
                    .elapsed
                    .as_secs_f64()
            }));
        }
        sim.run().assert_completed();
        let a = times[0].try_result().unwrap();
        let b = times[1].try_result().unwrap();
        // The slower one waited for the faster one's credits: it takes
        // roughly double the end-to-end time rather than sharing links.
        assert!(
            (b.max(a)) > (a.min(b)) * 1.6,
            "credit wait visible: {a} {b}"
        );
    }

    #[test]
    fn global_mpi_spawn_runs_across_the_bridge() {
        use deep_psmpi::{launch_world, MpiParams, ReduceOp, Universe, Value};
        let mut sim = Simulation::new(3);
        let ctx = sim.handle();
        let w = machine(&ctx, 4, 2, (2, 2, 2));
        let handle = Rc::new(CbpWireHandle(w.clone()));
        let uni = Universe::new(
            &ctx,
            handle,
            w.num_endpoints() as usize,
            MpiParams::default(),
        );
        uni.add_pool("booster", (0..8).map(|j| w.booster_ep(j)).collect());
        uni.register_app(
            "hscp",
            Rc::new(|m: deep_psmpi::MpiCtx| {
                Box::pin(async move {
                    let world = m.world().clone();
                    let s = m.allreduce(&world, ReduceOp::Sum, Value::U64(1), 8).await;
                    if m.rank() == 0 {
                        let parent = m.parent().unwrap().clone();
                        m.send_val(&parent, 0, 1, s).await;
                    }
                })
            }),
        );
        let w2 = w.clone();
        launch_world(
            &uni,
            "cluster",
            (0..4).map(|i| w2.cluster_ep(i)).collect(),
            move |m| {
                Box::pin(async move {
                    let world = m.world().clone();
                    let inter = m
                        .comm_spawn(&world, "hscp", 8, "booster", 0)
                        .await
                        .expect("spawn across the bridge");
                    if m.rank() == 0 {
                        let msg = m.recv(&inter, Some(0), Some(1)).await;
                        assert_eq!(msg.value.as_u64(), 8);
                    }
                    m.barrier(&world).await;
                })
            },
        );
        sim.run().assert_completed();
        // Spawn control + result traffic crossed the bridge.
        assert!(w.bridged_traffic().messages > 0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use deep_simkit::Simulation;

    fn faulty_machine(sim: &Sim) -> Rc<CbpWire> {
        let ib = Rc::new(IbFabric::new(sim, 6));
        let extoll = Rc::new(ExtollFabric::new(sim, (2, 2, 2)));
        let mut cfg = CbpConfig::new(4, 8, vec![(4, 0), (5, 4)]);
        cfg.stripe_threshold = u64::MAX; // single-BI flows
        cfg.bi_select = BiSelect::LeastLoaded; // deterministically BI 0
        CbpWire::new(sim, ib, extoll, cfg)
    }

    #[test]
    fn down_bi_fails_over_to_the_healthy_one() {
        let mut sim = Simulation::new(11);
        let ctx = sim.handle();
        let w = faulty_machine(&ctx);
        // Kill BI 0's IB host: the selector must route around it with no
        // failed attempt at all (health is checked before sending).
        w.ib().set_node_down(NodeId(4), true);
        let handle = CbpWireHandle(w.clone());
        let (src, dst) = (w.cluster_ep(0), w.booster_ep(6));
        let h = sim.spawn(
            "xfer",
            async move { handle.transfer(src, dst, 1 << 20).await },
        );
        sim.run().assert_completed();
        assert!(h.try_result().unwrap().is_ok());
        let per_bi = w.bi_traffic();
        assert_eq!(per_bi[0].messages, 0, "down BI untouched");
        assert_eq!(per_bi[1].messages, 1);
        assert_eq!(w.fault_stats().retries, 0);
    }

    #[test]
    fn nic_drop_retries_and_fails_over() {
        let mut sim = Simulation::new(12);
        let ctx = sim.handle();
        let w = faulty_machine(&ctx);
        // BI 0's IB host drops every message; the node is *not* marked
        // down, so the first attempt goes there and fails.
        w.ib().network().set_node_drop_prob(NodeId(4), 1.0);
        let handle = CbpWireHandle(w.clone());
        let (src, dst) = (w.cluster_ep(0), w.booster_ep(6));
        let h = sim.spawn(
            "xfer",
            async move { handle.transfer(src, dst, 1 << 20).await },
        );
        sim.run().assert_completed();
        assert!(h.try_result().unwrap().is_ok());
        let st = w.fault_stats();
        assert!(st.retries >= 1, "dropped attempt retried: {st:?}");
        assert!(st.failovers >= 1, "retry moved to the other BI: {st:?}");
        assert_eq!(w.bi_traffic()[1].messages, 1);
    }

    #[test]
    fn all_bis_down_reports_failure_not_hang() {
        let mut sim = Simulation::new(13);
        let ctx = sim.handle();
        let w = faulty_machine(&ctx);
        w.ib().set_node_down(NodeId(4), true);
        w.extoll().set_node_down(NodeId(4), true); // BI 1's entry node
        let handle = CbpWireHandle(w.clone());
        let (src, dst) = (w.cluster_ep(1), w.booster_ep(3));
        let h = sim.spawn("xfer", async move { handle.transfer(src, dst, 4096).await });
        sim.run().assert_completed();
        assert!(h.try_result().unwrap().is_err());
    }

    #[test]
    fn attempt_timeout_abandons_a_stalled_leg() {
        let mut sim = Simulation::new(14);
        let ctx = sim.handle();
        let ib = Rc::new(IbFabric::new(&ctx, 6));
        let extoll = Rc::new(ExtollFabric::new(&ctx, (2, 2, 2)));
        let mut cfg = CbpConfig::new(4, 8, vec![(4, 0), (5, 4)]);
        cfg.stripe_threshold = u64::MAX;
        cfg.bi_select = BiSelect::LeastLoaded;
        // 1 MiB at ~GB/s is far above 10 us: every attempt times out.
        cfg.retry = CbpRetry {
            max_attempts: 2,
            base_backoff: SimDuration::micros(1),
            attempt_timeout: Some(SimDuration::micros(10)),
        };
        let w = CbpWire::new(&ctx, ib, extoll, cfg);
        let handle = CbpWireHandle(w.clone());
        let (src, dst) = (w.cluster_ep(0), w.booster_ep(6));
        let h = sim.spawn(
            "xfer",
            async move { handle.transfer(src, dst, 1 << 20).await },
        );
        sim.run().assert_completed();
        assert!(h.try_result().unwrap().is_err());
        let st = w.fault_stats();
        assert_eq!(st.timeouts, 2, "both attempts timed out: {st:?}");
    }
}

#[cfg(test)]
mod bi_select_tests {
    use super::*;
    use deep_simkit::Simulation;

    fn machine_with(sim: &Sim, select: BiSelect) -> Rc<CbpWire> {
        let ib = Rc::new(IbFabric::new(sim, 12));
        let extoll = Rc::new(ExtollFabric::new(sim, (4, 4, 4)));
        let mut cfg = CbpConfig::new(8, 64, vec![(8, 0), (9, 16), (10, 32), (11, 48)]);
        cfg.bi_select = select;
        cfg.stripe_threshold = u64::MAX; // force per-flow selection
        CbpWire::new(sim, ib, extoll, cfg)
    }

    /// Skewed flow sizes: hashing ignores load, so byte totals per BI end
    /// up unbalanced; least-loaded balances them and finishes no later.
    fn run_flows(select: BiSelect) -> (f64, f64) {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let w = machine_with(&ctx, select);
        for c in 0..8u32 {
            let handle = CbpWireHandle(w.clone());
            let src = w.cluster_ep(c);
            let dst = w.booster_ep((c * 9 + 3) % 64);
            let bytes = (c as u64 + 1) * (8 << 20); // 8..64 MiB, heavy skew
            sim.spawn(format!("f{c}"), async move {
                handle.transfer(src, dst, bytes).await.unwrap();
            });
        }
        sim.run().assert_completed();
        let per_bi = w.bi_traffic();
        let bytes: Vec<f64> = per_bi.iter().map(|s| s.bytes as f64).collect();
        let mean = bytes.iter().sum::<f64>() / bytes.len() as f64;
        let max = bytes.iter().cloned().fold(0.0, f64::max);
        (max / mean, sim.now().as_secs_f64())
    }

    #[test]
    fn least_loaded_balances_skewed_flows() {
        let (hash_imbalance, hash_time) = run_flows(BiSelect::FlowHash);
        let (ll_imbalance, ll_time) = run_flows(BiSelect::LeastLoaded);
        assert!(
            ll_imbalance < hash_imbalance,
            "least-loaded must balance bytes: {ll_imbalance:.2} vs {hash_imbalance:.2}"
        );
        assert!(
            ll_time <= hash_time * 1.02,
            "and finish no later: {ll_time} vs {hash_time}"
        );
    }
}
