//! Property-based tests of the Cluster–Booster Protocol.

use std::rc::Rc;

use deep_cbp::{CbpConfig, CbpWire, CbpWireHandle, Side};
use deep_fabric::{ExtollFabric, IbFabric};
use deep_psmpi::{EpId, Wire};
use deep_simkit::{Sim, Simulation};
use proptest::prelude::*;

fn machine(sim: &Sim, n_cluster: u32, n_bi: u32, dim: u32) -> Rc<CbpWire> {
    let ib = Rc::new(IbFabric::new(sim, n_cluster + n_bi));
    let extoll = Rc::new(ExtollFabric::new(sim, (dim, dim, dim)));
    let n_booster = dim * dim * dim;
    let bis = (0..n_bi)
        .map(|i| (n_cluster + i, (i * dim) % n_booster))
        .collect();
    CbpWire::new(sim, ib, extoll, CbpConfig::new(n_cluster, n_booster, bis))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Endpoint ids partition exactly into cluster + booster sides, and
    /// the mapping round-trips.
    #[test]
    fn endpoint_space_partitions(
        n_cluster in 1u32..20,
        n_bi in 1u32..4,
        dim in 1u32..5,
    ) {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let w = machine(&ctx, n_cluster, n_bi, dim);
        let n_booster = dim * dim * dim;
        prop_assume!(n_bi <= n_booster);
        prop_assert_eq!(w.num_endpoints(), n_cluster + n_booster);
        for ep in 0..w.num_endpoints() {
            match w.side_of(EpId(ep)) {
                Side::Cluster(n) => {
                    prop_assert!(ep < n_cluster);
                    prop_assert_eq!(w.cluster_ep(n.0), EpId(ep));
                }
                Side::Booster(n) => {
                    prop_assert!(ep >= n_cluster);
                    prop_assert_eq!(w.booster_ep(n.0), EpId(ep));
                }
            }
        }
        sim.run().assert_completed();
    }

    /// Every transfer completes, counts its bytes exactly once, and a
    /// bridged transfer can never beat the slower of its two legs'
    /// serialization floors.
    #[test]
    fn bridged_transfers_respect_physics(
        bytes in 1u64..(32 << 20),
        c in 0u32..4,
        b in 0u32..27,
    ) {
        let mut sim = Simulation::new(2);
        let ctx = sim.handle();
        let w = machine(&ctx, 4, 2, 3);
        let handle = CbpWireHandle(w.clone());
        let src = w.cluster_ep(c);
        let dst = w.booster_ep(b);
        let h = sim.spawn("x", async move {
            handle.transfer(src, dst, bytes).await.unwrap().elapsed
        });
        sim.run().assert_completed();
        let elapsed = h.try_result().unwrap().as_secs_f64();
        // Floor: the payload must fully cross the slower fabric at least
        // once (6.8 GB/s IB leg).
        let floor = bytes as f64 / 6.8e9;
        prop_assert!(elapsed >= floor, "elapsed {elapsed} vs floor {floor}");
        let traffic = w.bridged_traffic();
        prop_assert_eq!(traffic.messages, 1);
        prop_assert_eq!(traffic.bytes, bytes);
        // Per-BI accounting adds up to the payload.
        let per_bi: u64 = w.bi_traffic().iter().map(|s| s.bytes).sum();
        prop_assert_eq!(per_bi, bytes);
    }

    /// Concurrent bridged flows all complete and the per-BI accounting
    /// still adds up.
    #[test]
    fn many_flows_account_exactly(
        flows in prop::collection::vec((0u32..4, 0u32..27, 1u64..(4 << 20)), 1..12),
    ) {
        let mut sim = Simulation::new(3);
        let ctx = sim.handle();
        let w = machine(&ctx, 4, 2, 3);
        for (i, &(c, b, bytes)) in flows.iter().enumerate() {
            let handle = CbpWireHandle(w.clone());
            let src = w.cluster_ep(c);
            let dst = w.booster_ep(b);
            sim.spawn(format!("f{i}"), async move {
                handle.transfer(src, dst, bytes).await.unwrap();
            });
        }
        sim.run().assert_completed();
        let total: u64 = flows.iter().map(|&(_, _, b)| b).sum();
        prop_assert_eq!(w.bridged_traffic().bytes, total);
        let per_bi: u64 = w.bi_traffic().iter().map(|s| s.bytes).sum();
        prop_assert_eq!(per_bi, total);
    }
}
