//! The [`Topology`] trait and a trivial crossbar implementation.
//!
//! A topology owns the static wiring of a fabric: how many endpoints and
//! directed links exist, their speeds, and the (deterministic) route taken
//! between any two endpoints.

use crate::types::{LinkId, LinkSpec, NodeId};

/// Static wiring of a fabric.
pub trait Topology {
    /// Number of endpoints.
    fn num_nodes(&self) -> usize;

    /// Specs of every directed link, indexed by `LinkId`.
    fn link_specs(&self) -> Vec<LinkSpec>;

    /// Append the directed links of the route `src → dst` to `out`.
    /// Must be empty iff `src == dst`. Deterministic.
    fn route(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>);

    /// Human-readable topology name.
    fn name(&self) -> &str;
}

/// An ideal full crossbar: every ordered pair gets a dedicated link.
/// Useful as a contention-free reference in tests and ablations.
pub struct Crossbar {
    nodes: usize,
    spec: LinkSpec,
}

impl Crossbar {
    /// Build a crossbar over `nodes` endpoints with uniform link spec.
    pub fn new(nodes: usize, spec: LinkSpec) -> Self {
        assert!(nodes >= 1);
        Crossbar { nodes, spec }
    }
}

impl Topology for Crossbar {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn link_specs(&self) -> Vec<LinkSpec> {
        vec![self.spec; self.nodes * self.nodes]
    }

    fn route(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        out.push(LinkId(src.0 * self.nodes as u32 + dst.0));
    }

    fn name(&self) -> &str {
        "crossbar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_simkit::SimDuration;

    #[test]
    fn crossbar_routes_are_single_hop_and_disjoint() {
        let xb = Crossbar::new(
            4,
            LinkSpec {
                bandwidth_bps: 1e9,
                latency: SimDuration::nanos(100),
            },
        );
        let mut seen = std::collections::HashSet::new();
        let mut path = Vec::new();
        for s in 0..4u32 {
            for d in 0..4u32 {
                path.clear();
                xb.route(NodeId(s), NodeId(d), &mut path);
                if s == d {
                    assert!(path.is_empty());
                } else {
                    assert_eq!(path.len(), 1);
                    assert!(seen.insert(path[0]), "links must be pair-unique");
                }
            }
        }
        assert_eq!(xb.link_specs().len(), 16);
    }
}

// ---------------------------------------------------------------------------
// Topology analysis
// ---------------------------------------------------------------------------

/// Static graph metrics of a topology, computed from its routes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyStats {
    /// Longest shortest route, in hops.
    pub diameter: u32,
    /// Mean route length over all ordered pairs (excluding self-pairs).
    pub mean_distance: f64,
    /// Total directed links.
    pub links: usize,
    /// Endpoints.
    pub nodes: usize,
}

/// Compute [`TopologyStats`] by enumerating all ordered endpoint pairs.
/// Intended for analysis/benches (O(n²) route evaluations).
pub fn analyze(topo: &dyn Topology) -> TopologyStats {
    let n = topo.num_nodes();
    let mut path = Vec::new();
    let mut diameter = 0u32;
    let mut total = 0u64;
    let mut pairs = 0u64;
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            if a == b {
                continue;
            }
            path.clear();
            topo.route(NodeId(a), NodeId(b), &mut path);
            let hops = path.len() as u32;
            diameter = diameter.max(hops);
            total += hops as u64;
            pairs += 1;
        }
    }
    TopologyStats {
        diameter,
        mean_distance: if pairs > 0 {
            total as f64 / pairs as f64
        } else {
            0.0
        },
        links: topo.link_specs().len(),
        nodes: n,
    }
}

#[cfg(test)]
mod analysis_tests {
    use super::*;
    use crate::fattree::{ib_fdr_host_spec, ib_fdr_trunk_spec, FatTree};
    use crate::torus::{extoll_link_spec, Torus3D};

    #[test]
    fn crossbar_stats() {
        let xb = Crossbar::new(
            6,
            LinkSpec {
                bandwidth_bps: 1e9,
                latency: deep_simkit::SimDuration::nanos(10),
            },
        );
        let s = analyze(&xb);
        assert_eq!(s.diameter, 1);
        assert_eq!(s.mean_distance, 1.0);
        assert_eq!(s.nodes, 6);
    }

    #[test]
    fn torus_diameter_matches_theory() {
        // d-dimensional torus diameter = sum of floor(dim/2).
        let t = Torus3D::new((6, 4, 2), extoll_link_spec());
        let s = analyze(&t);
        assert_eq!(s.diameter, 3 + 2 + 1);
        assert_eq!(s.nodes, 48);
        assert_eq!(s.links, 48 * 6);
    }

    #[test]
    fn fattree_diameter_is_four() {
        let t = FatTree::new(32, 8, 8, ib_fdr_host_spec(), ib_fdr_trunk_spec());
        let s = analyze(&t);
        assert_eq!(s.diameter, 4);
        // Mean distance between 2 (same leaf) and 4 (cross leaf).
        assert!(s.mean_distance > 2.0 && s.mean_distance < 4.0);
    }

    #[test]
    fn torus_mean_distance_grows_with_size() {
        let small = analyze(&Torus3D::new((4, 4, 4), extoll_link_spec()));
        let large = analyze(&Torus3D::new((8, 8, 8), extoll_link_spec()));
        assert!(large.mean_distance > small.mean_distance);
        // Theory: mean per dimension of a k-torus is ~k/4.
        assert!((small.mean_distance - 3.0).abs() < 0.2);
    }
}
