//! The contention engine: a [`Network`] binds a [`Topology`] to simulated
//! time and carries transfers across it.
//!
//! ## Transfer model
//!
//! Cut-through (wormhole-like) analytic model. A message of `S` bytes
//! follows its route link by link; on each link it occupies the wire for
//! the serialization time `S / bandwidth`, the occupancy window on link
//! *i+1* starting one hop-latency after the window on link *i*. Each link
//! keeps a `busy_until` horizon, so a message arriving at a busy link
//! queues behind the previous occupant (FIFO per link). Uncontended, a
//! k-hop transfer takes `k·hop_latency + S/B`; contended, it is delayed by
//! exactly the backlog of the bottleneck link — the behaviour collective
//! and offload experiments depend on.
//!
//! Messages larger than the fabric MTU are segmented: segments pipeline
//! through the route, so segmentation only matters for the *contention
//! granularity* (a huge message cannot hog a link forever if `mtu` is
//! finite — interleaving happens at segment boundaries).
//!
//! ## State layout
//!
//! Per-link and per-node dynamic state is stored **SoA** (one parallel
//! array per field, indexed by `LinkId`/`NodeId`) rather than as arrays
//! of structs. At fabric scale — a 262 144-host fat tree has ~1.6 M
//! directed links — the transfer hot loop touches only `busy_until`
//! (and `busy_accum`), so the SoA split keeps the contention horizon
//! array dense in cache instead of dragging the accounting fields along
//! at 32 bytes per link. Node-fault state keeps an active-fault count so
//! the fault-free fast path is one integer test, not two array reads per
//! transfer.

use std::cell::{Cell, RefCell};

use deep_simkit::{Sim, SimDuration, SimRng, SimTime, TraceKey};

use crate::topology::Topology;
use crate::types::{EndpointOverhead, LinkId, NodeId, TransferStats};

/// Per-link dynamic state, SoA: `busy_until[l]` is the contention
/// horizon the hot loop reads and writes; the other arrays are
/// accounting, read only by diagnostics.
struct LinkStates {
    busy_until: Vec<SimTime>,
    busy_accum: Vec<SimDuration>,
    bytes_carried: Vec<u64>,
    messages: Vec<u64>,
}

impl LinkStates {
    fn new(n: usize) -> Self {
        LinkStates {
            busy_until: vec![SimTime::ZERO; n],
            busy_accum: vec![SimDuration::ZERO; n],
            bytes_carried: vec![0; n],
            messages: vec![0; n],
        }
    }
}

/// Fault-injection model: per-traversal corruption probability; a corrupt
/// segment is retransmitted over the same link (link-level retry, as in
/// EXTOLL's CRC/retransmission RAS feature).
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Probability that one segment traversal is corrupted.
    pub segment_error_rate: f64,
    /// Upper bound on retries per segment before the fabric gives up
    /// (a real EXTOLL link raises an unrecoverable error interrupt).
    pub max_retries: u32,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            segment_error_rate: 0.0,
            max_retries: 16,
        }
    }
}

/// Error returned when a transfer exceeds the fault model's retry budget,
/// is addressed to (or from) a crashed node, or is dropped by a faulty
/// NIC. The `link` is the first link of the failed route, or
/// [`LinkFailure::NO_LINK`] when no route was involved (loopback or an
/// endpoint-down rejection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFailure {
    /// The link that exhausted its retries.
    pub link: LinkId,
}

impl LinkFailure {
    /// Sentinel link id for failures with no associated route.
    pub const NO_LINK: LinkId = LinkId(u32::MAX);
}

/// Per-node injected fault state, SoA, with an active-fault count so
/// the (overwhelmingly common) fault-free case skips the arrays.
struct NodeFaults {
    /// The node is down: every transfer touching it fails.
    down: Vec<bool>,
    /// Probability that this node's NIC drops a whole message.
    drop_prob: Vec<f64>,
    /// Number of nodes with any fault active (`down` or `drop_prob > 0`).
    active: usize,
}

impl NodeFaults {
    fn new(n: usize) -> Self {
        NodeFaults {
            down: vec![false; n],
            drop_prob: vec![0.0; n],
            active: 0,
        }
    }

    #[inline]
    fn is_faulty(&self, i: usize) -> bool {
        self.down[i] || self.drop_prob[i] > 0.0
    }
}

/// One message of a same-epoch batch (see [`Network::schedule_batch`]).
#[derive(Debug, Clone, Copy)]
pub struct BatchMsg {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Absolute time the first byte may enter the fabric — the sender's
    /// readiness plus any software overhead. May lie in the future
    /// relative to the current instant (never in the past).
    pub earliest: SimTime,
}

/// A live fabric: topology + per-link dynamic state.
pub struct Network {
    sim: Sim,
    topo: Box<dyn Topology>,
    links: RefCell<LinkStates>,
    rng: RefCell<SimRng>,
    fault: Cell<FaultModel>,
    node_faults: RefCell<NodeFaults>,
    /// Reused route buffer for the batch path (one allocation per
    /// fabric, not one per message).
    route_scratch: RefCell<Vec<LinkId>>,
    /// Maximum transmission unit for segmentation (bytes).
    mtu: u64,
    /// Bandwidth for node-local (src == dst) copies.
    loopback_bps: f64,
    specs: Vec<crate::types::LinkSpec>,
    /// Pre-interned trace keys for the per-transfer fault paths, so a
    /// retry storm records events without name lookups.
    k_drop: TraceKey,
    k_link_fail: TraceKey,
}

impl Network {
    /// Wrap a topology. `rng_stream` keys this fabric's fault randomness.
    pub fn new(sim: &Sim, topo: Box<dyn Topology>, mtu: u64, rng_stream: u64) -> Self {
        let specs = topo.link_specs();
        let n_nodes = topo.num_nodes();
        Network {
            sim: sim.clone(),
            links: RefCell::new(LinkStates::new(specs.len())),
            topo,
            rng: RefCell::new(sim.fork_rng(rng_stream)),
            fault: Cell::new(FaultModel::default()),
            node_faults: RefCell::new(NodeFaults::new(n_nodes)),
            route_scratch: RefCell::new(Vec::with_capacity(8)),
            mtu: mtu.max(64),
            loopback_bps: 8e9, // a memcpy-grade intra-node path
            specs,
            k_drop: sim.trace_key("net", "drop"),
            k_link_fail: sim.trace_key("net", "link-fail"),
        }
    }

    /// Install a fault model (default: error-free). Interior-mutable so a
    /// fault injector can degrade and heal a link mid-run through a
    /// shared handle.
    pub fn set_fault_model(&self, fault: FaultModel) {
        self.fault.set(fault);
    }

    /// The currently installed fault model.
    pub fn fault_model(&self) -> FaultModel {
        self.fault.get()
    }

    /// Mark a node as crashed (`down = true`) or repaired. While down,
    /// every transfer to or from the node fails with a [`LinkFailure`].
    pub fn set_node_down(&self, node: NodeId, down: bool) {
        {
            let mut nf = self.node_faults.borrow_mut();
            let i = node.0 as usize;
            let was = nf.is_faulty(i);
            nf.down[i] = down;
            let is = nf.is_faulty(i);
            nf.active = nf.active + usize::from(is && !was) - usize::from(was && !is);
        }
        self.sim
            .emit("net", if down { "node-down" } else { "node-up" }, || {
                format!("node {}", node.0)
            });
    }

    /// True if the node is currently marked crashed.
    pub fn is_node_down(&self, node: NodeId) -> bool {
        self.node_faults.borrow().down[node.0 as usize]
    }

    /// Set the probability that this node's NIC drops a whole message
    /// (sampled once per transfer touching the node; 0.0 to heal).
    pub fn set_node_drop_prob(&self, node: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        let mut nf = self.node_faults.borrow_mut();
        let i = node.0 as usize;
        let was = nf.is_faulty(i);
        nf.drop_prob[i] = p;
        let is = nf.is_faulty(i);
        nf.active = nf.active + usize::from(is && !was) - usize::from(was && !is);
    }

    /// Override the loopback (intra-node) copy bandwidth.
    pub fn set_loopback_bps(&mut self, bps: f64) {
        self.loopback_bps = bps;
    }

    /// The simulation handle this network runs on.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Number of endpoints in the underlying topology.
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// Topology name, for reports.
    pub fn topology_name(&self) -> &str {
        self.topo.name()
    }

    /// Route length in hops between two endpoints.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> u32 {
        let mut path = self.route_scratch.borrow_mut();
        path.clear();
        self.topo.route(src, dst, &mut path);
        path.len() as u32
    }

    /// Carry `bytes` from `src` to `dst`, suspending until the last byte
    /// (plus endpoint overheads) has arrived. Returns transfer statistics
    /// or a [`LinkFailure`] if injected errors exhausted the retry budget.
    pub async fn transfer(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        overhead: EndpointOverhead,
    ) -> Result<TransferStats, LinkFailure> {
        assert!((src.0 as usize) < self.num_nodes(), "src out of range");
        assert!((dst.0 as usize) < self.num_nodes(), "dst out of range");
        let start = self.sim.now();

        // Sender-side software/NIC overhead happens first, in real time.
        if overhead.send > SimDuration::ZERO {
            self.sim.sleep(overhead.send).await;
        }

        // Injected node crashes: a transfer touching a down node fails
        // after the sender has already burned its send overhead (the
        // local software stack cannot know the peer died). With no fault
        // anywhere in the fabric (the common case) this is one counter
        // test, not two reads into megabyte-scale per-node arrays.
        let (down, drop_prob) = {
            let nf = self.node_faults.borrow();
            if nf.active == 0 {
                (false, 0.0)
            } else {
                let (s, d) = (src.0 as usize, dst.0 as usize);
                (
                    nf.down[s] || nf.down[d],
                    1.0 - (1.0 - nf.drop_prob[s]) * (1.0 - nf.drop_prob[d]),
                )
            }
        };

        if src == dst {
            if down {
                self.sim
                    .emit_key(self.k_drop, || format!("loopback on down node {}", src.0));
                return Err(LinkFailure {
                    link: LinkFailure::NO_LINK,
                });
            }
            // Loopback: a memory copy, no fabric involvement.
            let copy = SimDuration::from_secs_f64(bytes as f64 / self.loopback_bps);
            self.sim.sleep(copy).await;
            if overhead.recv > SimDuration::ZERO {
                self.sim.sleep(overhead.recv).await;
            }
            return Ok(TransferStats {
                elapsed: self.sim.now() - start,
                hops: 0,
                bytes,
                retransmissions: 0,
            });
        }

        let mut path = Vec::with_capacity(8);
        self.topo.route(src, dst, &mut path);
        debug_assert!(!path.is_empty(), "route for distinct nodes is non-empty");

        if down {
            // The message dies at the first hop: charge one hop latency
            // (the time the NIC spends discovering nothing answers).
            self.sim.sleep(self.specs[path[0].0 as usize].latency).await;
            self.sim.emit_key(self.k_drop, || {
                format!("node down on route {} -> {}", src.0, dst.0)
            });
            return Err(LinkFailure { link: path[0] });
        }
        if drop_prob > 0.0 && self.rng.borrow_mut().gen_bool(drop_prob) {
            // NIC drop: the message traverses the route (charging hop
            // latencies, not occupancy) and silently vanishes.
            let lat: SimDuration = path.iter().map(|&l| self.specs[l.0 as usize].latency).sum();
            self.sim.sleep(lat).await;
            self.sim.emit_key(self.k_drop, || {
                format!("nic drop on route {} -> {}", src.0, dst.0)
            });
            return Err(LinkFailure { link: path[0] });
        }

        // Segment the payload by MTU; segments pipeline, so we model the
        // whole train as one occupancy of length S/B per link but charge
        // retransmissions per segment.
        let fault = self.fault.get();
        let segments = bytes.div_ceil(self.mtu).max(1);
        let mut retrans_total: u32 = 0;
        let mut effective_bytes = bytes.max(1);
        if fault.segment_error_rate > 0.0 {
            let mut rng = self.rng.borrow_mut();
            // Per traversal (segment × link) sample geometric retries.
            // For large segment counts sample the binomial mean instead of
            // per-segment draws to keep the event count bounded.
            let traversals = segments as f64 * path.len() as f64;
            let p = fault.segment_error_rate;
            let expected_failures = traversals * p / (1.0 - p);
            let sampled = if traversals <= 1024.0 {
                let mut n = 0u64;
                for _ in 0..(segments * path.len() as u64) {
                    let mut tries = 0u32;
                    while rng.gen_bool(p) {
                        tries += 1;
                        if tries > fault.max_retries {
                            self.sim.emit_key(self.k_link_fail, || {
                                format!("retries exhausted on link {}", path[0].0)
                            });
                            return Err(LinkFailure { link: path[0] });
                        }
                    }
                    n += tries as u64;
                }
                n as f64
            } else {
                // Gaussian approximation of the retransmission count.
                let std = expected_failures.sqrt();
                (expected_failures + std * (rng.gen_f64() * 2.0 - 1.0)).max(0.0)
            };
            retrans_total = sampled as u32;
            effective_bytes += (sampled as u64).saturating_mul(self.mtu.min(bytes));
        }

        // Analytic cut-through schedule over the route.
        let completion = {
            let now = self.sim.now();
            let mut links = self.links.borrow_mut();
            Self::occupy_route(&mut links, &self.specs, &path, effective_bytes, now)
        };

        self.sim.sleep_until(completion).await;
        if overhead.recv > SimDuration::ZERO {
            self.sim.sleep(overhead.recv).await;
        }

        Ok(TransferStats {
            elapsed: self.sim.now() - start,
            hops: path.len() as u32,
            bytes,
            retransmissions: retrans_total,
        })
    }

    /// Advance the cut-through occupancy of every link on `route` for one
    /// message of `bytes`, first byte entering no earlier than `head`.
    /// Returns the last-byte arrival at the destination. Pure function of
    /// the link horizons — shared by the per-message path and the batch
    /// path so both produce identical timings.
    #[inline]
    fn occupy_route(
        links: &mut LinkStates,
        specs: &[crate::types::LinkSpec],
        route: &[LinkId],
        bytes: u64,
        head: SimTime,
    ) -> SimTime {
        let mut head = head; // when the header reaches the next link
        let mut completion = head;
        for &lid in route {
            let i = lid.0 as usize;
            let spec = specs[i];
            let occupancy_start = head.max(links.busy_until[i]);
            let ser = spec.serialization(bytes);
            links.busy_until[i] = occupancy_start + ser;
            links.busy_accum[i] += ser;
            links.bytes_carried[i] += bytes;
            links.messages[i] += 1;
            let last_byte_arrival = occupancy_start + ser + spec.latency;
            completion = completion.max(last_byte_arrival);
            head = occupancy_start + spec.latency;
        }
        completion
    }

    /// Simulate a batch of independent same-epoch transfers in one call,
    /// without suspending: link occupancies are advanced message by
    /// message **in slice order** (so the schedule is a pure function of
    /// the batch, bit-identical on every run) and `completions[i]`
    /// receives message `i`'s last-byte arrival. Returns the overall
    /// latest completion, which is the single instant a caller needs to
    /// sleep until — one kernel event for the whole batch instead of one
    /// (or several) per message.
    ///
    /// This is the scaling path for fabric-wide phases (halo exchanges,
    /// collective rounds at 10⁵ ranks): semantics match issuing the
    /// messages through [`Network::transfer`] at their `earliest`
    /// instants in slice order, minus what the batch path deliberately
    /// does not model — endpoint overheads (fold them into `earliest`
    /// and onto the returned completion) and fault injection (the batch
    /// path is for clean bulk phases; debug builds assert no fault model
    /// or node fault is active).
    ///
    /// Messages may depend on the future (`earliest >= now` is
    /// required); loopback messages cost the node-local copy time and
    /// touch no links.
    pub fn schedule_batch(&self, msgs: &[BatchMsg], completions: &mut Vec<SimTime>) -> SimTime {
        let now = self.sim.now();
        debug_assert_eq!(
            self.fault.get().segment_error_rate,
            0.0,
            "schedule_batch does not sample the fault model"
        );
        debug_assert_eq!(
            self.node_faults.borrow().active,
            0,
            "schedule_batch does not model node faults"
        );
        completions.clear();
        completions.reserve(msgs.len());
        let mut links = self.links.borrow_mut();
        let mut route = self.route_scratch.borrow_mut();
        let mut overall = now;
        for m in msgs {
            debug_assert!(m.earliest >= now, "batch message scheduled in the past");
            let head = m.earliest.max(now);
            let done = if m.src == m.dst {
                head + SimDuration::from_secs_f64(m.bytes as f64 / self.loopback_bps)
            } else {
                route.clear();
                self.topo.route(m.src, m.dst, &mut route);
                Self::occupy_route(&mut links, &self.specs, &route, m.bytes.max(1), head)
            };
            completions.push(done);
            overall = overall.max(done);
        }
        overall
    }

    /// Total bytes carried per link so far (diagnostics). Allocates;
    /// prefer [`Network::link_bytes_into`] in loops.
    pub fn link_bytes(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.link_bytes_into(&mut out);
        out
    }

    /// Write the per-link byte counters into a caller-owned buffer
    /// (cleared first), so periodic samplers reuse one allocation no
    /// matter how many links the fabric has.
    pub fn link_bytes_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.links.borrow().bytes_carried);
    }

    /// Busy-time fraction of each link relative to `elapsed`. Allocates;
    /// prefer [`Network::link_utilization_into`] in loops.
    pub fn link_utilization(&self, elapsed: SimDuration) -> Vec<f64> {
        let mut out = Vec::new();
        self.link_utilization_into(elapsed, &mut out);
        out
    }

    /// Write per-link busy fractions into a caller-owned buffer
    /// (cleared first).
    pub fn link_utilization_into(&self, elapsed: SimDuration, out: &mut Vec<f64>) {
        let e = elapsed.as_secs_f64();
        let links = self.links.borrow();
        out.clear();
        out.reserve(links.busy_accum.len());
        out.extend(links.busy_accum.iter().map(
            |b| {
                if e > 0.0 {
                    b.as_secs_f64() / e
                } else {
                    0.0
                }
            },
        ));
    }

    /// Number of directed links in the fabric.
    pub fn num_links(&self) -> usize {
        self.specs.len()
    }

    /// Total messages carried across all links.
    pub fn total_messages(&self) -> u64 {
        self.links.borrow().messages.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Crossbar;
    use crate::types::LinkSpec;
    use deep_simkit::Simulation;
    use std::rc::Rc;

    fn mk(sim: &Sim, nodes: usize, bw: f64, lat_ns: u64) -> Rc<Network> {
        Rc::new(Network::new(
            sim,
            Box::new(Crossbar::new(
                nodes,
                LinkSpec {
                    bandwidth_bps: bw,
                    latency: SimDuration::nanos(lat_ns),
                },
            )),
            4096,
            1,
        ))
    }

    #[test]
    fn uncontended_transfer_time_is_latency_plus_serialization() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = mk(&ctx, 2, 1e9, 500);
        sim.spawn("xfer", async move {
            let st = net
                .transfer(NodeId(0), NodeId(1), 1_000_000, EndpointOverhead::default())
                .await
                .unwrap();
            // 1 MB at 1 GB/s = 1 ms, + 500 ns hop latency.
            assert_eq!(st.elapsed.as_nanos(), 1_000_000 + 500);
            assert_eq!(st.hops, 1);
        });
        sim.run().assert_completed();
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = mk(&ctx, 2, 1e9, 0);
        // Two messages from 0 to 1 share the single directed link.
        for i in 0..2 {
            let net = net.clone();
            sim.spawn(format!("m{i}"), async move {
                let st = net
                    .transfer(NodeId(0), NodeId(1), 1_000_000, EndpointOverhead::default())
                    .await
                    .unwrap();
                st.elapsed.as_nanos()
            });
        }
        let ctx2 = ctx.clone();
        let check = sim.spawn("check", async move {
            ctx2.sleep(SimDuration::millis(10)).await;
        });
        sim.run().assert_completed();
        drop(check);
        // The link carried 2 MB; busy time must be 2 ms exactly.
        let bytes: u64 = net.link_bytes().iter().sum();
        assert_eq!(bytes, 2_000_000);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = mk(&ctx, 2, 1e9, 0);
        let n1 = net.clone();
        let a = sim.spawn("fwd", async move {
            n1.transfer(NodeId(0), NodeId(1), 1_000_000, EndpointOverhead::default())
                .await
                .unwrap()
                .elapsed
                .as_nanos()
        });
        let n2 = net.clone();
        let b = sim.spawn("rev", async move {
            n2.transfer(NodeId(1), NodeId(0), 1_000_000, EndpointOverhead::default())
                .await
                .unwrap()
                .elapsed
                .as_nanos()
        });
        sim.run().assert_completed();
        // Full duplex: both finish in 1 ms, not 2.
        assert_eq!(a.try_result(), Some(1_000_000));
        assert_eq!(b.try_result(), Some(1_000_000));
    }

    #[test]
    fn loopback_does_not_touch_fabric() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = mk(&ctx, 2, 1e9, 500);
        let n = net.clone();
        sim.spawn("loop", async move {
            let st = n
                .transfer(NodeId(0), NodeId(0), 8_000, EndpointOverhead::default())
                .await
                .unwrap();
            assert_eq!(st.hops, 0);
            // 8 kB at 8 GB/s loopback = 1 us.
            assert_eq!(st.elapsed.as_nanos(), 1_000);
        });
        sim.run().assert_completed();
        assert_eq!(net.link_bytes().iter().sum::<u64>(), 0);
    }

    #[test]
    fn endpoint_overheads_add_up() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = mk(&ctx, 2, 1e9, 100);
        sim.spawn("xfer", async move {
            let st = net
                .transfer(
                    NodeId(0),
                    NodeId(1),
                    1000,
                    EndpointOverhead {
                        send: SimDuration::nanos(300),
                        recv: SimDuration::nanos(200),
                    },
                )
                .await
                .unwrap();
            // 300 + (1000 ns ser + 100 lat) + 200.
            assert_eq!(st.elapsed.as_nanos(), 300 + 1000 + 100 + 200);
        });
        sim.run().assert_completed();
    }

    #[test]
    fn fault_injection_adds_retransmissions() {
        let mut sim = Simulation::new(3);
        let ctx = sim.handle();
        let raw = Network::new(
            &ctx,
            Box::new(Crossbar::new(
                2,
                LinkSpec {
                    bandwidth_bps: 1e9,
                    latency: SimDuration::nanos(0),
                },
            )),
            4096,
            1,
        );
        raw.set_fault_model(FaultModel {
            segment_error_rate: 0.2,
            max_retries: 64,
        });
        let net = Rc::new(raw);
        let n = net.clone();
        let h = sim.spawn("xfer", async move {
            n.transfer(NodeId(0), NodeId(1), 400_000, EndpointOverhead::default())
                .await
                .unwrap()
        });
        sim.run().assert_completed();
        let st = h.try_result().unwrap();
        // ~98 segments at 20% error rate: expect ~24 retransmissions.
        assert!(
            st.retransmissions > 5,
            "expected retransmissions, got {}",
            st.retransmissions
        );
        // Goodput strictly below the clean-link bandwidth.
        assert!(st.goodput_bps() < 0.95e9);
    }

    #[test]
    fn excessive_errors_fail_the_link() {
        let mut sim = Simulation::new(4);
        let ctx = sim.handle();
        let raw = Network::new(
            &ctx,
            Box::new(Crossbar::new(
                2,
                LinkSpec {
                    bandwidth_bps: 1e9,
                    latency: SimDuration::nanos(0),
                },
            )),
            4096,
            1,
        );
        raw.set_fault_model(FaultModel {
            segment_error_rate: 0.999,
            max_retries: 2,
        });
        let net = Rc::new(raw);
        let h = sim.spawn("xfer", async move {
            net.transfer(NodeId(0), NodeId(1), 4096, EndpointOverhead::default())
                .await
        });
        sim.run().assert_completed();
        assert!(matches!(h.try_result(), Some(Err(LinkFailure { .. }))));
    }

    #[test]
    fn down_node_rejects_transfers_until_repaired() {
        let mut sim = Simulation::new(5);
        let ctx = sim.handle();
        let net = mk(&ctx, 3, 1e9, 100);
        net.set_node_down(NodeId(1), true);
        let n = net.clone();
        let h = sim.spawn("xfer", async move {
            let dead = n
                .transfer(NodeId(0), NodeId(1), 1000, EndpointOverhead::default())
                .await;
            assert!(dead.is_err());
            // Unrelated pairs keep working.
            n.transfer(NodeId(0), NodeId(2), 1000, EndpointOverhead::default())
                .await
                .expect("healthy pair");
            n.set_node_down(NodeId(1), false);
            n.transfer(NodeId(0), NodeId(1), 1000, EndpointOverhead::default())
                .await
                .expect("repaired node");
        });
        sim.run().assert_completed();
        assert!(h.is_finished());
    }

    #[test]
    fn nic_drop_probability_one_always_drops() {
        let mut sim = Simulation::new(6);
        let ctx = sim.handle();
        let net = mk(&ctx, 2, 1e9, 100);
        net.set_node_drop_prob(NodeId(1), 1.0);
        let n = net.clone();
        let h = sim.spawn("xfer", async move {
            let r = n
                .transfer(NodeId(0), NodeId(1), 1000, EndpointOverhead::default())
                .await;
            assert_ne!(r.unwrap_err().link, LinkFailure::NO_LINK);
            // The drop charged the route latency, not the serialization.
            n.sim().now().as_nanos()
        });
        sim.run().assert_completed();
        assert_eq!(h.try_result(), Some(100));
    }

    #[test]
    fn batch_matches_sequential_transfers() {
        // Two messages sharing one directed link: the batch path must
        // produce exactly the serialized schedule `transfer` would —
        // first message done at ser+lat, second queued behind it.
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = mk(&ctx, 2, 1e9, 500);
        sim.spawn("batch", async move {
            let msgs = [
                BatchMsg {
                    src: NodeId(0),
                    dst: NodeId(1),
                    bytes: 1_000_000,
                    earliest: SimTime::ZERO,
                },
                BatchMsg {
                    src: NodeId(0),
                    dst: NodeId(1),
                    bytes: 1_000_000,
                    earliest: SimTime::ZERO,
                },
            ];
            let mut done = Vec::new();
            let overall = net.schedule_batch(&msgs, &mut done);
            // 1 MB at 1 GB/s = 1 ms serialization + 500 ns latency;
            // the second occupancy starts when the first ends.
            assert_eq!(done[0].as_nanos(), 1_000_000 + 500);
            assert_eq!(done[1].as_nanos(), 2_000_000 + 500);
            assert_eq!(overall, done[1]);
            net.sim().sleep_until(overall).await;
            assert_eq!(net.link_bytes().iter().sum::<u64>(), 2_000_000);
        });
        sim.run().assert_completed();
    }

    #[test]
    fn batch_respects_per_message_earliest() {
        // A message whose `earliest` lies beyond the backlog of the
        // shared link starts at its own earliest, not at the backlog.
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = mk(&ctx, 3, 1e9, 0);
        sim.spawn("batch", async move {
            let msgs = [
                BatchMsg {
                    src: NodeId(0),
                    dst: NodeId(1),
                    bytes: 1_000,
                    earliest: SimTime(5_000),
                },
                // Different link pair: unaffected by the first message.
                BatchMsg {
                    src: NodeId(2),
                    dst: NodeId(1),
                    bytes: 1_000,
                    earliest: SimTime::ZERO,
                },
                // Loopback: node-local copy, no fabric links.
                BatchMsg {
                    src: NodeId(2),
                    dst: NodeId(2),
                    bytes: 8_000,
                    earliest: SimTime::ZERO,
                },
            ];
            let mut done = Vec::new();
            net.schedule_batch(&msgs, &mut done);
            assert_eq!(done[0].as_nanos(), 5_000 + 1_000);
            assert_eq!(done[1].as_nanos(), 1_000);
            assert_eq!(done[2].as_nanos(), 1_000); // 8 kB at 8 GB/s
        });
        sim.run().assert_completed();
    }

    #[test]
    fn link_bytes_into_reuses_the_buffer() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = mk(&ctx, 2, 1e9, 0);
        let n = net.clone();
        sim.spawn("xfer", async move {
            n.transfer(NodeId(0), NodeId(1), 1_000, EndpointOverhead::default())
                .await
                .unwrap();
        });
        sim.run().assert_completed();
        let mut buf = Vec::with_capacity(64);
        let cap = buf.capacity();
        net.link_bytes_into(&mut buf);
        assert_eq!(buf.iter().sum::<u64>(), 1_000);
        assert_eq!(buf.capacity(), cap, "sampler buffer must be reused");
        let mut util = Vec::new();
        net.link_utilization_into(SimDuration::micros(2), &mut util);
        // 1 us of busy time over 2 us elapsed on the used link.
        assert!(util.iter().any(|&u| (u - 0.5).abs() < 1e-9));
    }

    #[test]
    fn down_loopback_uses_sentinel_link() {
        let mut sim = Simulation::new(7);
        let ctx = sim.handle();
        let net = mk(&ctx, 2, 1e9, 100);
        net.set_node_down(NodeId(0), true);
        let n = net.clone();
        let h = sim.spawn("xfer", async move {
            n.transfer(NodeId(0), NodeId(0), 1000, EndpointOverhead::default())
                .await
        });
        sim.run().assert_completed();
        assert_eq!(
            h.try_result(),
            Some(Err(LinkFailure {
                link: LinkFailure::NO_LINK
            }))
        );
    }
}
