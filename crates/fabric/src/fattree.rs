//! Two-level fat-tree topology — the InfiniBand cluster fabric.
//!
//! `nodes_per_leaf` hosts hang off each leaf switch; every leaf connects
//! to every spine switch. With `spines >= nodes_per_leaf` the tree is
//! non-blocking (full bisection), the usual configuration for an HPC
//! cluster of the DEEP era. Spine selection is deterministic per
//! (src, dst) pair, spreading flows like static IB routing tables do.
//!
//! Link id layout (all directed):
//! * `4·h + 0` — host `h` → its leaf (up)
//! * `4·h + 1` — leaf → host `h` (down)
//! * then per (leaf l, spine s) pair: up and down links.

use deep_simkit::SimDuration;

use crate::topology::Topology;
use crate::types::{LinkId, LinkSpec, NodeId};

/// A two-level fat tree.
pub struct FatTree {
    hosts: u32,
    nodes_per_leaf: u32,
    leaves: u32,
    spines: u32,
    host_spec: LinkSpec,
    trunk_spec: LinkSpec,
    name: String,
}

impl FatTree {
    /// Build a fat tree over `hosts` endpoints.
    ///
    /// * `nodes_per_leaf` — hosts per leaf switch (last leaf may be partial)
    /// * `spines` — number of spine switches (≥ nodes_per_leaf ⇒ non-blocking)
    pub fn new(
        hosts: u32,
        nodes_per_leaf: u32,
        spines: u32,
        host_spec: LinkSpec,
        trunk_spec: LinkSpec,
    ) -> Self {
        assert!(hosts >= 1 && nodes_per_leaf >= 1 && spines >= 1);
        let leaves = hosts.div_ceil(nodes_per_leaf);
        FatTree {
            hosts,
            nodes_per_leaf,
            leaves,
            spines,
            host_spec,
            trunk_spec,
            name: format!("fattree-{hosts}h-{leaves}l-{spines}s"),
        }
    }

    /// Leaf switch of a host.
    pub fn leaf_of(&self, h: NodeId) -> u32 {
        h.0 / self.nodes_per_leaf
    }

    fn host_up(&self, h: u32) -> LinkId {
        LinkId(4 * h)
    }

    fn host_down(&self, h: u32) -> LinkId {
        LinkId(4 * h + 1)
    }

    fn trunk_base(&self) -> u32 {
        4 * self.hosts
    }

    fn leaf_up(&self, leaf: u32, spine: u32) -> LinkId {
        LinkId(self.trunk_base() + 2 * (leaf * self.spines + spine))
    }

    fn leaf_down(&self, leaf: u32, spine: u32) -> LinkId {
        LinkId(self.trunk_base() + 2 * (leaf * self.spines + spine) + 1)
    }

    /// Deterministic spine choice for a flow (static routing).
    fn spine_for(&self, src: NodeId, dst: NodeId) -> u32 {
        // Destination-based, like real IB LID routing: all flows to the
        // same destination share a spine, which creates the well-known
        // static-routing hot spots under adversarial patterns.
        (dst.0
            .wrapping_mul(2654435761)
            .wrapping_add(src.0 / self.nodes_per_leaf))
            % self.spines
    }
}

impl Topology for FatTree {
    fn num_nodes(&self) -> usize {
        self.hosts as usize
    }

    fn link_specs(&self) -> Vec<LinkSpec> {
        let mut v = Vec::with_capacity((4 * self.hosts + 2 * self.leaves * self.spines) as usize);
        for _ in 0..self.hosts {
            v.push(self.host_spec); // up
            v.push(self.host_spec); // down
                                    // Reserve two unused slots to keep host stride 4 (simplifies ids).
            v.push(self.host_spec);
            v.push(self.host_spec);
        }
        for _ in 0..(self.leaves * self.spines) {
            v.push(self.trunk_spec); // up
            v.push(self.trunk_spec); // down
        }
        v
    }

    fn route(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        let ls = self.leaf_of(src);
        let ld = self.leaf_of(dst);
        out.push(self.host_up(src.0));
        if ls != ld {
            let spine = self.spine_for(src, dst);
            out.push(self.leaf_up(ls, spine));
            out.push(self.leaf_down(ld, spine));
        }
        out.push(self.host_down(dst.0));
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// InfiniBand FDR-era defaults: ~6.8 GB/s usable, ~170 ns per switch hop.
pub fn ib_fdr_host_spec() -> LinkSpec {
    LinkSpec {
        bandwidth_bps: 6.8e9,
        latency: SimDuration::nanos(170),
    }
}

/// Trunk links: same rate (non-blocking tree), slightly longer cables.
pub fn ib_fdr_trunk_spec() -> LinkSpec {
    LinkSpec {
        bandwidth_bps: 6.8e9,
        latency: SimDuration::nanos(220),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(hosts: u32) -> FatTree {
        FatTree::new(hosts, 4, 4, ib_fdr_host_spec(), ib_fdr_trunk_spec())
    }

    #[test]
    fn same_leaf_two_hops_cross_leaf_four() {
        let t = tree(16);
        let mut p = Vec::new();
        t.route(NodeId(0), NodeId(1), &mut p);
        assert_eq!(p.len(), 2, "same-leaf route is host-up + host-down");
        p.clear();
        t.route(NodeId(0), NodeId(15), &mut p);
        assert_eq!(p.len(), 4, "cross-leaf adds leaf-up + leaf-down");
    }

    #[test]
    fn routes_are_valid_link_ids() {
        let t = tree(16);
        let n_links = t.link_specs().len() as u32;
        let mut p = Vec::new();
        for a in 0..16u32 {
            for b in 0..16u32 {
                p.clear();
                t.route(NodeId(a), NodeId(b), &mut p);
                for l in &p {
                    assert!(l.0 < n_links, "link id {l:?} out of range {n_links}");
                }
                if a != b {
                    assert!(!p.is_empty());
                }
            }
        }
    }

    #[test]
    fn distinct_destinations_use_multiple_spines() {
        let t = tree(32);
        let mut spines = std::collections::HashSet::new();
        for d in 4..32u32 {
            spines.insert(t.spine_for(NodeId(0), NodeId(d)));
        }
        assert!(spines.len() >= 3, "static routing should spread flows");
    }

    #[test]
    fn partial_last_leaf_is_fine() {
        let t = tree(10); // leaves = ceil(10/4) = 3
        let mut p = Vec::new();
        t.route(NodeId(9), NodeId(0), &mut p);
        assert_eq!(p.len(), 4);
    }
}
