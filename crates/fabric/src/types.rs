//! Common identifier and descriptor types for fabric models.

use deep_simkit::SimDuration;
use std::fmt;

/// Index of an endpoint (node) within one fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a directed link within one fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Static description of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Per-hop latency (propagation + router/switch pipeline).
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Serialization time of `bytes` on this link.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

/// Per-message cost added at the endpoints (software/NIC overheads).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EndpointOverhead {
    /// Sender-side overhead before the first byte enters the fabric.
    pub send: SimDuration,
    /// Receiver-side overhead after the last byte arrives.
    pub recv: SimDuration,
}

/// Outcome of a completed transfer, for metrics and assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferStats {
    /// End-to-end time including endpoint overheads.
    pub elapsed: SimDuration,
    /// Number of directed links traversed.
    pub hops: u32,
    /// Bytes carried (payload as requested).
    pub bytes: u64,
    /// Retransmissions suffered due to injected link errors.
    pub retransmissions: u32,
}

impl TransferStats {
    /// Achieved payload bandwidth in bytes/second.
    pub fn goodput_bps(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            return f64::INFINITY;
        }
        self.bytes as f64 / self.elapsed.as_secs_f64()
    }
}
