//! 3-D torus topology with dimension-ordered routing — the EXTOLL booster
//! fabric (slide 16: "6 links for 3D torus topology").
//!
//! Every node owns six directed outgoing links (±x, ±y, ±z). Routing is
//! deterministic dimension-ordered (x, then y, then z), taking the shorter
//! wrap-around direction in each dimension (positive on ties), exactly the
//! deadlock-free scheme EXTOLL's router implements in hardware.

use deep_simkit::SimDuration;

use crate::topology::Topology;
use crate::types::{LinkId, LinkSpec, NodeId};

/// Directions of the six torus links, in `LinkId` sub-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TorusDir {
    /// +x
    XPlus = 0,
    /// −x
    XMinus = 1,
    /// +y
    YPlus = 2,
    /// −y
    YMinus = 3,
    /// +z
    ZPlus = 4,
    /// −z
    ZMinus = 5,
}

/// A 3-D torus over `dims.0 × dims.1 × dims.2` nodes.
pub struct Torus3D {
    dims: (u32, u32, u32),
    spec: LinkSpec,
    name: String,
}

impl Torus3D {
    /// Build a torus; every link has the same spec.
    pub fn new(dims: (u32, u32, u32), spec: LinkSpec) -> Self {
        assert!(dims.0 >= 1 && dims.1 >= 1 && dims.2 >= 1);
        Torus3D {
            dims,
            spec,
            name: format!("torus3d-{}x{}x{}", dims.0, dims.1, dims.2),
        }
    }

    /// Torus dimensions.
    pub fn dims(&self) -> (u32, u32, u32) {
        self.dims
    }

    /// Coordinates of a node id.
    pub fn coords(&self, n: NodeId) -> (u32, u32, u32) {
        let (dx, dy, _) = self.dims;
        let x = n.0 % dx;
        let y = (n.0 / dx) % dy;
        let z = n.0 / (dx * dy);
        (x, y, z)
    }

    /// Node id of coordinates.
    pub fn node_at(&self, x: u32, y: u32, z: u32) -> NodeId {
        let (dx, dy, dz) = self.dims;
        assert!(x < dx && y < dy && z < dz);
        NodeId(x + dx * (y + dy * z))
    }

    /// The outgoing link of `n` in direction `dir`.
    pub fn link_of(&self, n: NodeId, dir: TorusDir) -> LinkId {
        LinkId(n.0 * 6 + dir as u32)
    }

    /// Minimal hop distance on the torus (L1 with wrap-around).
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay, az) = self.coords(a);
        let (bx, by, bz) = self.coords(b);
        let d = |p: u32, q: u32, dim: u32| -> u32 {
            let fwd = (q + dim - p) % dim;
            let back = (p + dim - q) % dim;
            fwd.min(back)
        };
        d(ax, bx, self.dims.0) + d(ay, by, self.dims.1) + d(az, bz, self.dims.2)
    }

    /// Steps (direction, count) along one dimension: shorter way around,
    /// positive on ties.
    fn dim_steps(from: u32, to: u32, dim: u32) -> (bool, u32) {
        let fwd = (to + dim - from) % dim;
        let back = (from + dim - to) % dim;
        if fwd <= back {
            (true, fwd)
        } else {
            (false, back)
        }
    }
}

impl Topology for Torus3D {
    fn num_nodes(&self) -> usize {
        (self.dims.0 * self.dims.1 * self.dims.2) as usize
    }

    fn link_specs(&self) -> Vec<LinkSpec> {
        vec![self.spec; self.num_nodes() * 6]
    }

    fn route(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        let (mut x, mut y, mut z) = self.coords(src);
        let (tx, ty, tz) = self.coords(dst);
        let (dx, dy, dz) = self.dims;

        let (fwd, n) = Self::dim_steps(x, tx, dx);
        for _ in 0..n {
            let cur = self.node_at(x, y, z);
            if fwd {
                out.push(self.link_of(cur, TorusDir::XPlus));
                x = (x + 1) % dx;
            } else {
                out.push(self.link_of(cur, TorusDir::XMinus));
                x = (x + dx - 1) % dx;
            }
        }
        let (fwd, n) = Self::dim_steps(y, ty, dy);
        for _ in 0..n {
            let cur = self.node_at(x, y, z);
            if fwd {
                out.push(self.link_of(cur, TorusDir::YPlus));
                y = (y + 1) % dy;
            } else {
                out.push(self.link_of(cur, TorusDir::YMinus));
                y = (y + dy - 1) % dy;
            }
        }
        let (fwd, n) = Self::dim_steps(z, tz, dz);
        for _ in 0..n {
            let cur = self.node_at(x, y, z);
            if fwd {
                out.push(self.link_of(cur, TorusDir::ZPlus));
                z = (z + 1) % dz;
            } else {
                out.push(self.link_of(cur, TorusDir::ZMinus));
                z = (z + dz - 1) % dz;
            }
        }
        debug_assert_eq!((x, y, z), (tx, ty, tz), "DOR must land on target");
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Reasonable EXTOLL-era defaults: ~7 GB/s usable per link, 60 ns per hop.
pub fn extoll_link_spec() -> LinkSpec {
    LinkSpec {
        bandwidth_bps: 7.0e9,
        latency: SimDuration::nanos(60),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus(d: (u32, u32, u32)) -> Torus3D {
        Torus3D::new(d, extoll_link_spec())
    }

    #[test]
    fn coords_roundtrip() {
        let t = torus((4, 3, 2));
        for n in 0..t.num_nodes() as u32 {
            let (x, y, z) = t.coords(NodeId(n));
            assert_eq!(t.node_at(x, y, z), NodeId(n));
        }
    }

    #[test]
    fn route_length_equals_torus_distance() {
        let t = torus((4, 4, 4));
        let mut path = Vec::new();
        for a in 0..64u32 {
            for b in 0..64u32 {
                path.clear();
                t.route(NodeId(a), NodeId(b), &mut path);
                assert_eq!(
                    path.len() as u32,
                    t.distance(NodeId(a), NodeId(b)),
                    "route {a}->{b} must be minimal"
                );
            }
        }
    }

    #[test]
    fn wraparound_is_shorter() {
        let t = torus((8, 1, 1));
        // 0 -> 7 is one hop backwards, not seven forwards.
        assert_eq!(t.distance(NodeId(0), NodeId(7)), 1);
        let mut path = Vec::new();
        t.route(NodeId(0), NodeId(7), &mut path);
        assert_eq!(path.len(), 1);
        assert_eq!(path[0], t.link_of(NodeId(0), TorusDir::XMinus));
    }

    #[test]
    fn max_distance_is_half_each_dimension() {
        let t = torus((8, 8, 8));
        let mut max = 0;
        for n in 0..512u32 {
            max = max.max(t.distance(NodeId(0), NodeId(n)));
        }
        assert_eq!(max, 12, "8x8x8 torus diameter is 4+4+4");
    }

    #[test]
    fn six_links_per_node() {
        let t = torus((3, 3, 3));
        assert_eq!(t.link_specs().len(), 27 * 6);
    }

    #[test]
    fn dor_paths_share_prefix_dimension_order() {
        let t = torus((4, 4, 1));
        let mut path = Vec::new();
        t.route(t.node_at(0, 0, 0), t.node_at(2, 2, 0), &mut path);
        // First the x hops, then the y hops.
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], t.link_of(t.node_at(0, 0, 0), TorusDir::XPlus));
        assert_eq!(path[1], t.link_of(t.node_at(1, 0, 0), TorusDir::XPlus));
        assert_eq!(path[2], t.link_of(t.node_at(2, 0, 0), TorusDir::YPlus));
        assert_eq!(path[3], t.link_of(t.node_at(2, 1, 0), TorusDir::YPlus));
    }
}
