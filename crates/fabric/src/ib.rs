//! InfiniBand front-end: verbs-level send on top of the fat tree.
//!
//! Encodes the paper's slide-8 observation: "IB can be assumed as fast as
//! PCIe besides latency" — the fat-tree links carry FDR-class bandwidth,
//! but the software/NIC path costs roughly a microsecond per message,
//! several times the PCIe DMA doorbell cost.

use std::rc::Rc;

use deep_simkit::{Sim, SimDuration};

use crate::fattree::{ib_fdr_host_spec, ib_fdr_trunk_spec, FatTree};
use crate::network::{LinkFailure, Network};
use crate::types::{EndpointOverhead, NodeId, TransferStats};

/// Tunable InfiniBand parameters.
#[derive(Debug, Clone, Copy)]
pub struct IbParams {
    /// Sender software + NIC overhead per message.
    pub send_overhead: SimDuration,
    /// Receiver completion overhead per message.
    pub recv_overhead: SimDuration,
    /// MTU for segmentation.
    pub mtu: u64,
}

impl Default for IbParams {
    fn default() -> Self {
        IbParams {
            send_overhead: SimDuration::nanos(600),
            recv_overhead: SimDuration::nanos(300),
            mtu: 4096,
        }
    }
}

/// An InfiniBand cluster fabric.
pub struct IbFabric {
    net: Rc<Network>,
    params: IbParams,
}

impl IbFabric {
    /// Build a non-blocking FDR fat tree over `hosts` endpoints.
    pub fn new(sim: &Sim, hosts: u32) -> Self {
        Self::with_params(sim, hosts, 18, IbParams::default())
    }

    /// Build with explicit radix and parameters. `nodes_per_leaf` hosts
    /// share each leaf switch; the same number of spines keeps the tree
    /// non-blocking.
    pub fn with_params(sim: &Sim, hosts: u32, nodes_per_leaf: u32, params: IbParams) -> Self {
        let topo = FatTree::new(
            hosts,
            nodes_per_leaf,
            nodes_per_leaf,
            ib_fdr_host_spec(),
            ib_fdr_trunk_spec(),
        );
        let net = Network::new(sim, Box::new(topo), params.mtu, 0x1B_FAB);
        IbFabric {
            net: Rc::new(net),
            params,
        }
    }

    /// Underlying network (for utilisation metrics).
    pub fn network(&self) -> &Rc<Network> {
        &self.net
    }

    /// Install a fault model mid-run (a fault injector degrading links).
    pub fn set_fault_model(&self, fault: crate::network::FaultModel) {
        self.net.set_fault_model(fault);
    }

    /// Mark a host as crashed or repaired.
    pub fn set_node_down(&self, node: crate::types::NodeId, down: bool) {
        self.net.set_node_down(node, down);
    }

    /// True if a host is currently marked crashed.
    pub fn is_node_down(&self, node: crate::types::NodeId) -> bool {
        self.net.is_node_down(node)
    }

    /// Number of hosts.
    pub fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    /// Parameters in use.
    pub fn params(&self) -> &IbParams {
        &self.params
    }

    /// Two-sided verbs send.
    pub async fn send(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<TransferStats, LinkFailure> {
        self.net
            .transfer(
                src,
                dst,
                bytes,
                EndpointOverhead {
                    send: self.params.send_overhead,
                    recv: self.params.recv_overhead,
                },
            )
            .await
    }

    /// RDMA write: thinner receive path (no remote CPU involvement).
    pub async fn rdma_write(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<TransferStats, LinkFailure> {
        self.net
            .transfer(
                src,
                dst,
                bytes,
                EndpointOverhead {
                    send: self.params.send_overhead,
                    recv: SimDuration::nanos(50),
                },
            )
            .await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_simkit::Simulation;

    #[test]
    fn small_message_latency_is_about_a_microsecond() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ib = Rc::new(IbFabric::new(&ctx, 64));
        let f = ib.clone();
        let h = sim.spawn("ping", async move {
            f.send(NodeId(0), NodeId(63), 8).await.unwrap().elapsed
        });
        sim.run().assert_completed();
        let lat = h.try_result().unwrap();
        assert!(
            lat >= SimDuration::micros(1) && lat < SimDuration::micros(3),
            "cross-tree 8B latency {lat} should be ~1-2 µs"
        );
    }

    #[test]
    fn bulk_bandwidth_approaches_fdr_rate() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ib = Rc::new(IbFabric::new(&ctx, 64));
        let f = ib.clone();
        let h = sim.spawn("bulk", async move {
            f.send(NodeId(0), NodeId(63), 256 << 20).await.unwrap()
        });
        sim.run().assert_completed();
        let st = h.try_result().unwrap();
        let frac = st.goodput_bps() / 6.8e9;
        assert!(frac > 0.99, "bulk goodput fraction {frac:.4}");
    }

    #[test]
    fn ib_is_latency_poorer_but_bandwidth_comparable_to_pcie() {
        // Slide 8's claim, checked at the spec level.
        use crate::pcie::pcie2_x16_spec;
        let ib_bw = ib_fdr_host_spec().bandwidth_bps;
        let pcie_bw = pcie2_x16_spec().bandwidth_bps;
        assert!(
            (ib_bw / pcie_bw - 1.0).abs() < 0.25,
            "bandwidths within 25%"
        );
        let ib_lat = IbParams::default().send_overhead + IbParams::default().recv_overhead;
        assert!(
            ib_lat.as_nanos() > 2 * pcie2_x16_spec().latency.as_nanos(),
            "IB message overhead well above a PCIe DMA leg"
        );
    }
}
