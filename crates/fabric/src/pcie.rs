//! PCIe topology for the conventional *accelerated cluster* baseline
//! (slides 6–7): accelerators hang off a host CPU; every transfer is
//! staged through main memory, and device↔device traffic crosses the
//! root complex twice. This is the bottleneck the cluster-of-accelerators
//! design removes.
//!
//! Node 0 is the host; nodes `1..=devices` are accelerator cards.
//!
//! Link layout (directed):
//! * 0 — host memory → root complex (shared by all outbound DMA)
//! * 1 — root complex → host memory (shared by all inbound DMA)
//! * `2 + 2(d−1)` — root complex → device `d` (the device's ×16 down-link)
//! * `3 + 2(d−1)` — device `d` → root complex (×16 up-link)

use deep_simkit::SimDuration;

use crate::topology::Topology;
use crate::types::{LinkId, LinkSpec, NodeId};

/// A host with PCIe-attached accelerator devices.
pub struct PcieBus {
    devices: u32,
    rc_spec: LinkSpec,
    lane_spec: LinkSpec,
    name: String,
}

impl PcieBus {
    /// Build a bus with `devices` accelerators.
    pub fn new(devices: u32, rc_spec: LinkSpec, lane_spec: LinkSpec) -> Self {
        assert!(devices >= 1);
        PcieBus {
            devices,
            rc_spec,
            lane_spec,
            name: format!("pcie-{devices}dev"),
        }
    }

    /// Number of accelerator devices.
    pub fn devices(&self) -> u32 {
        self.devices
    }

    /// The host endpoint.
    pub fn host() -> NodeId {
        NodeId(0)
    }

    /// The `i`-th device endpoint (0-based).
    pub fn device(i: u32) -> NodeId {
        NodeId(i + 1)
    }

    fn down(&self, dev: u32) -> LinkId {
        LinkId(2 + 2 * (dev - 1))
    }

    fn up(&self, dev: u32) -> LinkId {
        LinkId(3 + 2 * (dev - 1))
    }
}

impl Topology for PcieBus {
    fn num_nodes(&self) -> usize {
        (self.devices + 1) as usize
    }

    fn link_specs(&self) -> Vec<LinkSpec> {
        let mut v = vec![self.rc_spec, self.rc_spec];
        for _ in 0..self.devices {
            v.push(self.lane_spec);
            v.push(self.lane_spec);
        }
        v
    }

    fn route(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        match (src.0, dst.0) {
            (0, d) => {
                // Host → device: memory read + DMA down.
                out.push(LinkId(0));
                out.push(self.down(d));
            }
            (d, 0) => {
                // Device → host: DMA up + memory write.
                out.push(self.up(d));
                out.push(LinkId(1));
            }
            (a, b) => {
                // Device ↔ device without peer-to-peer: staged via memory.
                out.push(self.up(a));
                out.push(LinkId(1));
                out.push(LinkId(0));
                out.push(self.down(b));
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// PCIe 2.0 ×16 effective rate (~6.2 GB/s of the 8 GB/s raw), sub-µs leg.
pub fn pcie2_x16_spec() -> LinkSpec {
    LinkSpec {
        bandwidth_bps: 6.2e9,
        latency: SimDuration::nanos(350),
    }
}

/// Root-complex / memory path: faster than one ×16 slot, but *shared* by
/// every accelerator in the node.
pub fn root_complex_spec() -> LinkSpec {
    LinkSpec {
        bandwidth_bps: 10.0e9,
        latency: SimDuration::nanos(150),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::types::EndpointOverhead;
    use deep_simkit::Simulation;
    use std::rc::Rc;

    #[test]
    fn route_shapes() {
        let bus = PcieBus::new(2, root_complex_spec(), pcie2_x16_spec());
        let mut p = Vec::new();
        bus.route(PcieBus::host(), PcieBus::device(0), &mut p);
        assert_eq!(p.len(), 2);
        p.clear();
        bus.route(PcieBus::device(0), PcieBus::device(1), &mut p);
        assert_eq!(p.len(), 4, "device-to-device stages through memory");
    }

    #[test]
    fn two_gpus_contend_on_root_complex() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = Rc::new(Network::new(
            &ctx,
            Box::new(PcieBus::new(2, root_complex_spec(), pcie2_x16_spec())),
            4096,
            1,
        ));
        let mut handles = Vec::new();
        for d in 0..2 {
            let net = net.clone();
            handles.push(sim.spawn(format!("h2d{d}"), async move {
                net.transfer(
                    PcieBus::host(),
                    PcieBus::device(d),
                    64 << 20,
                    EndpointOverhead::default(),
                )
                .await
                .unwrap()
                .elapsed
            }));
        }
        sim.run().assert_completed();
        let times: Vec<_> = handles
            .into_iter()
            .map(|h| h.try_result().unwrap())
            .collect();
        // Each 64 MiB at 6.2 GB/s lane ≈ 10.8 ms, but the shared 10 GB/s
        // root-complex link serializes: second finishes ≥ 64MiB/10GBps later.
        let fast = times.iter().min().unwrap().as_secs_f64();
        let slow = times.iter().max().unwrap().as_secs_f64();
        assert!(slow > fast + 0.005, "shared RC must delay one transfer");
    }
}
