//! # deep-fabric — interconnect models for the DEEP reproduction
//!
//! Flow-level network simulation on top of `deep-simkit`:
//!
//! * [`network::Network`] — the contention engine: cut-through analytic
//!   transfers over per-link FIFO occupancy horizons, MTU segmentation,
//!   CRC-error injection with link-level retransmission;
//! * [`torus::Torus3D`] — the EXTOLL booster fabric (6 directed links per
//!   node, dimension-ordered routing);
//! * [`fattree::FatTree`] — the InfiniBand cluster fabric;
//! * [`pcie::PcieBus`] — host-staged accelerator attachment, the
//!   conventional accelerated-cluster baseline;
//! * [`extoll::ExtollFabric`] / [`ib::IbFabric`] — NIC front-ends adding
//!   the per-message engine overheads (VELO, RMA, SMFU, verbs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extoll;
pub mod fattree;
pub mod ib;
pub mod network;
pub mod pcie;
pub mod topology;
pub mod torus;
pub mod types;

pub use extoll::{ExtollFabric, ExtollParams};
pub use fattree::FatTree;
pub use ib::{IbFabric, IbParams};
pub use network::{BatchMsg, FaultModel, LinkFailure, Network};
pub use pcie::PcieBus;
pub use topology::{analyze, Crossbar, Topology, TopologyStats};
pub use torus::{Torus3D, TorusDir};
pub use types::{EndpointOverhead, LinkId, LinkSpec, NodeId, TransferStats};
