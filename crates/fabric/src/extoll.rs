//! EXTOLL NIC front-end: the engines of slide 16 on top of the 3-D torus.
//!
//! * **VELO** — the small-message engine: messages are injected directly
//!   from user space with tiny fixed overhead (zero-copy MPI send path).
//! * **RMA** — the bulk-transfer engine: one-sided put/get with a setup
//!   cost; `get` pays an extra request traversal.
//! * **SMFU** — shared-memory functional unit, used by the Cluster–Booster
//!   Protocol to bridge into InfiniBand; modelled as a per-message
//!   protocol-translation overhead applied at the bridge node.
//! * **RAS** — CRC-protected links with link-level retransmission, driven
//!   by the [`FaultModel`] of the underlying [`Network`].

use std::rc::Rc;

use deep_simkit::{Sim, SimDuration};

use crate::network::{FaultModel, LinkFailure, Network};
use crate::torus::{extoll_link_spec, Torus3D};
use crate::types::{EndpointOverhead, LinkSpec, NodeId, TransferStats};

/// Tunable engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExtollParams {
    /// Largest payload the VELO engine accepts.
    pub velo_max_bytes: u64,
    /// VELO sender overhead (user-space doorbell + descriptor).
    pub velo_send_overhead: SimDuration,
    /// VELO receiver overhead (mailbox poll + copy-out).
    pub velo_recv_overhead: SimDuration,
    /// RMA descriptor setup on the initiator.
    pub rma_setup_overhead: SimDuration,
    /// RMA completion notification cost.
    pub rma_completion_overhead: SimDuration,
    /// SMFU protocol-translation cost per message (used by the CBP bridge).
    pub smfu_overhead: SimDuration,
    /// Link MTU for segmentation/retransmission granularity.
    pub mtu: u64,
}

impl Default for ExtollParams {
    fn default() -> Self {
        ExtollParams {
            velo_max_bytes: 8192,
            velo_send_overhead: SimDuration::nanos(250),
            velo_recv_overhead: SimDuration::nanos(150),
            rma_setup_overhead: SimDuration::nanos(500),
            rma_completion_overhead: SimDuration::nanos(100),
            smfu_overhead: SimDuration::nanos(400),
            mtu: 4096,
        }
    }
}

/// An EXTOLL fabric: 3-D torus + engine overheads.
pub struct ExtollFabric {
    net: Rc<Network>,
    torus_dims: (u32, u32, u32),
    params: ExtollParams,
}

impl ExtollFabric {
    /// Build an EXTOLL torus of the given dimensions with default link
    /// spec and parameters.
    pub fn new(sim: &Sim, dims: (u32, u32, u32)) -> Self {
        Self::with_spec(sim, dims, extoll_link_spec(), ExtollParams::default())
    }

    /// Build with explicit link spec and parameters.
    pub fn with_spec(
        sim: &Sim,
        dims: (u32, u32, u32),
        spec: LinkSpec,
        params: ExtollParams,
    ) -> Self {
        let topo = Torus3D::new(dims, spec);
        let net = Network::new(sim, Box::new(topo), params.mtu, 0x00E0_7011);
        ExtollFabric {
            net: Rc::new(net),
            torus_dims: dims,
            params,
        }
    }

    /// Enable CRC-error injection on every link.
    pub fn with_fault_model(self, fault: FaultModel) -> Self {
        self.net.set_fault_model(fault);
        self
    }

    /// Install a fault model mid-run (a fault injector degrading links).
    pub fn set_fault_model(&self, fault: FaultModel) {
        self.net.set_fault_model(fault);
    }

    /// Mark a booster node as crashed or repaired.
    pub fn set_node_down(&self, node: crate::types::NodeId, down: bool) {
        self.net.set_node_down(node, down);
    }

    /// True if a booster node is currently marked crashed.
    pub fn is_node_down(&self, node: crate::types::NodeId) -> bool {
        self.net.is_node_down(node)
    }

    /// Engine parameters.
    pub fn params(&self) -> &ExtollParams {
        &self.params
    }

    /// Underlying network (for utilisation metrics).
    pub fn network(&self) -> &Rc<Network> {
        &self.net
    }

    /// Number of booster nodes on the torus.
    pub fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    /// Torus dimensions.
    pub fn dims(&self) -> (u32, u32, u32) {
        self.torus_dims
    }

    /// Minimal hop distance between two nodes.
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> u32 {
        self.net.hop_count(a, b)
    }

    /// Send a small message through the VELO engine.
    /// Panics if the payload exceeds `velo_max_bytes`.
    pub async fn velo_send(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<TransferStats, LinkFailure> {
        assert!(
            bytes <= self.params.velo_max_bytes,
            "VELO payload {bytes} exceeds engine limit {}",
            self.params.velo_max_bytes
        );
        self.net
            .transfer(
                src,
                dst,
                bytes,
                EndpointOverhead {
                    send: self.params.velo_send_overhead,
                    recv: self.params.velo_recv_overhead,
                },
            )
            .await
    }

    /// One-sided bulk put through the RMA engine. The remote CPU is not
    /// involved; the initiator pays setup + completion.
    pub async fn rma_put(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<TransferStats, LinkFailure> {
        self.net
            .transfer(
                src,
                dst,
                bytes,
                EndpointOverhead {
                    send: self.params.rma_setup_overhead,
                    recv: self.params.rma_completion_overhead,
                },
            )
            .await
    }

    /// One-sided bulk get: a request traversal precedes the data flowing
    /// back, so small gets pay roughly one extra network latency.
    pub async fn rma_get(
        &self,
        initiator: NodeId,
        target: NodeId,
        bytes: u64,
    ) -> Result<TransferStats, LinkFailure> {
        let start = self.net.sim().now();
        // Request descriptor to the target (header-sized).
        self.net
            .transfer(
                initiator,
                target,
                64,
                EndpointOverhead {
                    send: self.params.rma_setup_overhead,
                    recv: SimDuration::ZERO,
                },
            )
            .await?;
        // Data streams back.
        let mut st = self
            .net
            .transfer(
                target,
                initiator,
                bytes,
                EndpointOverhead {
                    send: SimDuration::ZERO,
                    recv: self.params.rma_completion_overhead,
                },
            )
            .await?;
        st.elapsed = self.net.sim().now() - start;
        Ok(st)
    }

    /// Pick VELO for small payloads and RMA for bulk, like the MPI port.
    pub async fn send_auto(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<TransferStats, LinkFailure> {
        if bytes <= self.params.velo_max_bytes {
            self.velo_send(src, dst, bytes).await
        } else {
            self.rma_put(src, dst, bytes).await
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_simkit::Simulation;

    #[test]
    fn velo_latency_is_submicrosecond_for_tiny_messages() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ext = Rc::new(ExtollFabric::new(&ctx, (4, 4, 4)));
        let e = ext.clone();
        let h = sim.spawn("ping", async move {
            e.velo_send(NodeId(0), NodeId(1), 8).await.unwrap().elapsed
        });
        sim.run().assert_completed();
        let lat = h.try_result().unwrap();
        assert!(
            lat < SimDuration::micros(1),
            "one-hop VELO latency {lat} must be sub-µs"
        );
    }

    #[test]
    fn rma_reaches_most_of_link_bandwidth_for_bulk() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ext = Rc::new(ExtollFabric::new(&ctx, (4, 4, 4)));
        let e = ext.clone();
        let h = sim.spawn("bulk", async move {
            e.rma_put(NodeId(0), NodeId(1), 64 << 20).await.unwrap()
        });
        sim.run().assert_completed();
        let st = h.try_result().unwrap();
        let frac = st.goodput_bps() / extoll_link_spec().bandwidth_bps;
        assert!(frac > 0.99, "bulk RMA goodput fraction {frac:.3}");
    }

    #[test]
    fn rma_get_pays_extra_round_trip() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ext = Rc::new(ExtollFabric::new(&ctx, (8, 8, 8)));
        let (e1, e2) = (ext.clone(), ext.clone());
        let far = NodeId(511); // distance 12 from node 0
        let put = sim.spawn("put", async move {
            e1.rma_put(NodeId(0), far, 256).await.unwrap().elapsed
        });
        let get = sim.spawn("get", async move {
            e2.rma_get(NodeId(0), far, 256).await.unwrap().elapsed
        });
        sim.run().assert_completed();
        assert!(get.try_result().unwrap() > put.try_result().unwrap());
    }

    #[test]
    fn velo_rejects_oversized_payloads() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ext = Rc::new(ExtollFabric::new(&ctx, (2, 2, 2)));
        let h = sim.spawn("too-big", async move {
            // 1 MiB through VELO must panic; catch via spawned process.
            ext.velo_send(NodeId(0), NodeId(1), 1 << 20).await.ok();
        });
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run();
        }));
        assert!(res.is_err(), "oversized VELO send should panic");
        drop(h);
    }

    #[test]
    fn latency_scales_with_hop_count() {
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let ext = Rc::new(ExtollFabric::new(&ctx, (8, 8, 8)));
        let mut handles = Vec::new();
        // Nodes along +x: 1, 2, 3, 4 hops from 0. Staggered so the probes
        // never contend on the shared first link.
        for hops in 1..=4u32 {
            let e = ext.clone();
            let ctx = ctx.clone();
            handles.push(sim.spawn(format!("d{hops}"), async move {
                ctx.sleep(SimDuration::micros(hops as u64 * 100)).await;
                e.velo_send(NodeId(0), NodeId(hops), 8)
                    .await
                    .unwrap()
                    .elapsed
            }));
        }
        sim.run().assert_completed();
        let times: Vec<u64> = handles
            .into_iter()
            .map(|h| h.try_result().unwrap().as_nanos())
            .collect();
        for w in times.windows(2) {
            assert_eq!(
                w[1] - w[0],
                60,
                "each extra hop adds exactly one hop latency"
            );
        }
    }
}
