//! Property-based tests of the interconnect models.

use std::rc::Rc;

use deep_fabric::{
    fattree::{ib_fdr_host_spec, ib_fdr_trunk_spec},
    torus::extoll_link_spec,
    EndpointOverhead, FatTree, LinkSpec, Network, NodeId, Topology, Torus3D,
};
use deep_simkit::{SimDuration, Simulation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DOR routes always have exactly the torus distance in hops, use
    /// valid link ids, and start/end at the right nodes.
    #[test]
    fn torus_routes_are_minimal_and_valid(
        dx in 1u32..7, dy in 1u32..7, dz in 1u32..7,
        a in 0u32..294, b in 0u32..294,
    ) {
        let t = Torus3D::new((dx, dy, dz), extoll_link_spec());
        let n = t.num_nodes() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let mut path = Vec::new();
        t.route(a, b, &mut path);
        prop_assert_eq!(path.len() as u32, t.distance(a, b));
        let n_links = t.link_specs().len() as u32;
        for l in &path {
            prop_assert!(l.0 < n_links);
        }
        // Walk the path: every link belongs to the node we are at.
        // Link layout is node*6+dir, so integer-divide to recover the node.
        if !path.is_empty() {
            prop_assert_eq!(path[0].0 / 6, a.0, "path starts at src");
        }
    }

    /// Torus distance is a metric: symmetric, zero iff equal, triangle.
    #[test]
    fn torus_distance_is_a_metric(
        dx in 1u32..6, dy in 1u32..6, dz in 1u32..6,
        x in 0u32..216, y in 0u32..216, z in 0u32..216,
    ) {
        let t = Torus3D::new((dx, dy, dz), extoll_link_spec());
        let n = t.num_nodes() as u32;
        let (x, y, z) = (NodeId(x % n), NodeId(y % n), NodeId(z % n));
        prop_assert_eq!(t.distance(x, y), t.distance(y, x));
        prop_assert_eq!(t.distance(x, x), 0);
        prop_assert!(t.distance(x, z) <= t.distance(x, y) + t.distance(y, z));
    }

    /// Fat-tree routes are 2 hops within a leaf, 4 across, all links valid.
    #[test]
    fn fattree_routes_valid(
        hosts in 2u32..100,
        radix in 1u32..12,
        a in 0u32..100, b in 0u32..100,
    ) {
        let t = FatTree::new(hosts, radix, radix, ib_fdr_host_spec(), ib_fdr_trunk_spec());
        let (a, b) = (NodeId(a % hosts), NodeId(b % hosts));
        let mut path = Vec::new();
        t.route(a, b, &mut path);
        if a == b {
            prop_assert!(path.is_empty());
        } else if t.leaf_of(a) == t.leaf_of(b) {
            prop_assert_eq!(path.len(), 2);
        } else {
            prop_assert_eq!(path.len(), 4);
        }
        let n_links = t.link_specs().len() as u32;
        for l in &path {
            prop_assert!(l.0 < n_links);
        }
    }

    /// A transfer can never beat physics: elapsed ≥ serialization at the
    /// slowest link + total hop latency.
    #[test]
    fn transfer_time_lower_bound(
        bytes in 1u64..(64 << 20),
        bw_mbps in 100u64..20_000,
        lat_ns in 0u64..5_000,
    ) {
        let spec = LinkSpec {
            bandwidth_bps: bw_mbps as f64 * 1e6,
            latency: SimDuration::nanos(lat_ns),
        };
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = Rc::new(Network::new(
            &ctx,
            Box::new(deep_fabric::Crossbar::new(2, spec)),
            4096,
            1,
        ));
        let h = sim.spawn("x", async move {
            net.transfer(NodeId(0), NodeId(1), bytes, EndpointOverhead::default())
                .await
                .unwrap()
                .elapsed
        });
        sim.run().assert_completed();
        let elapsed = h.try_result().unwrap();
        let floor = spec.serialization(bytes) + spec.latency;
        prop_assert!(
            elapsed >= floor,
            "elapsed {} below physical floor {}", elapsed, floor
        );
        // And within a rounding error of it when uncontended.
        prop_assert!(elapsed.as_nanos() <= floor.as_nanos() + 2);
    }

    /// Concurrent transfers on one link serialize: total busy time equals
    /// the sum of serializations, and the last completion is at least
    /// that long after the start.
    #[test]
    fn shared_link_conserves_bandwidth(sizes in prop::collection::vec(1u64..(1 << 20), 1..10)) {
        let spec = LinkSpec {
            bandwidth_bps: 1e9,
            latency: SimDuration::nanos(0),
        };
        let mut sim = Simulation::new(1);
        let ctx = sim.handle();
        let net = Rc::new(Network::new(
            &ctx,
            Box::new(deep_fabric::Crossbar::new(2, spec)),
            u64::MAX, // no segmentation: exact serialization accounting
            1,
        ));
        for (i, &s) in sizes.iter().enumerate() {
            let net = net.clone();
            sim.spawn(format!("x{i}"), async move {
                net.transfer(NodeId(0), NodeId(1), s, EndpointOverhead::default())
                    .await
                    .unwrap();
            });
        }
        sim.run().assert_completed();
        let total: u64 = sizes.iter().sum();
        let expect = SimDuration::from_secs_f64(total as f64 / 1e9);
        let end = sim.now();
        // All transfers start at t=0 and share one link: completion time
        // equals the summed serialization (within per-message rounding).
        prop_assert!(end.as_nanos() + 2 * sizes.len() as u64 >= expect.as_nanos());
        prop_assert!(end.as_nanos() <= expect.as_nanos() + 2 * sizes.len() as u64);
    }
}
