//! Adversarial-input tests: `deep-serve` hands this parser raw network
//! payloads, so no input — valid, truncated, binary, or deeply nested —
//! may panic or overflow the stack. Errors must carry a byte offset
//! inside the input.

use deep_json::{from_slice, from_str, Value, MAX_DEPTH};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Arbitrary byte soup: parse must return, never panic. On error
    /// the offset points into (or just past) the input.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(0u8..=255u8, 0..64)) {
        match from_slice(&bytes) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.at <= bytes.len()),
        }
    }

    /// Byte soup drawn from JSON's own alphabet reaches much deeper
    /// into the parser than uniform bytes do.
    #[test]
    fn structural_soup_never_panics(picks in prop::collection::vec(0usize..16, 0..48)) {
        const ALPHABET: [&str; 16] = [
            "{", "}", "[", "]", ":", ",", "\"", "\\", "1", "-", ".", "e",
            "true", "null", " ", "\\u12",
        ];
        let doc: String = picks.iter().map(|&i| ALPHABET[i]).collect();
        let _ = from_str(&doc);
    }

    /// Every parse of a rendered document round-trips exactly.
    #[test]
    fn render_parse_round_trip(n in 0u64..1_000_000, s in prop::collection::vec(32u8..127, 0..16)) {
        let text = String::from_utf8(s).unwrap();
        let v = Value::Object(vec![
            ("n".to_string(), Value::Number(n as f64)),
            ("s".to_string(), Value::String(text)),
        ]);
        prop_assert_eq!(from_str(&v.to_json()).unwrap(), v);
    }
}

#[test]
fn pathological_nesting_errors_cleanly() {
    // Orders of magnitude past MAX_DEPTH: must error, not blow the stack.
    for open in ["[", "{\"k\":"] {
        let doc = open.repeat(100 * MAX_DEPTH);
        let err = from_str(&doc).unwrap_err();
        assert!(err.message.contains("MAX_DEPTH"), "{err}");
    }
}

#[test]
fn truncations_of_a_valid_document_never_panic() {
    let full = r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny\"zA"},"d":null,"e":true}"#;
    for cut in 0..full.len() {
        if full.is_char_boundary(cut) {
            let _ = from_str(&full[..cut]);
        }
    }
}
