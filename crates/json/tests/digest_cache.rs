//! Digest-cache guarantees the serving layer depends on:
//!
//! * the canonical digest is a pure function of the config — identical
//!   at any pool width and pinned across process runs;
//! * a cache hit returns a byte-identical rendering of what was
//!   inserted, through memory and through the disk spill path;
//! * eviction respects the LRU bound deterministically (recency is a
//!   logical counter, so no ambient time enters the digest path).

use deep_json::cache::ResultCache;
use deep_json::digest::{canonical_json, digest, digest_hex};
use deep_json::{from_str, object, Value};
use rayon::prelude::*;
use std::path::PathBuf;

fn sweep_config(seed: u64) -> Value {
    object([
        ("seed", seed.into()),
        ("replicas", 8u32.into()),
        (
            "points",
            Value::Array(vec![object([
                ("n_nodes", 640u64.into()),
                ("interval_s", 5400.0.into()),
            ])]),
        ),
    ])
}

#[test]
fn digest_is_identical_at_any_pool_width() {
    let configs: Vec<Value> = (0..64).map(sweep_config).collect();
    let serial: Vec<u64> = configs.iter().map(digest).collect();
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let par: Vec<u64> = pool.install(|| configs.par_iter().map(digest).collect());
        assert_eq!(serial, par, "digest diverged at {threads} threads");
    }
}

#[test]
fn digest_survives_a_parse_round_trip() {
    // What a client digests locally must equal what the server digests
    // after the config crossed the wire.
    let v = sweep_config(7);
    let rewired = from_str(&v.to_json()).unwrap();
    assert_eq!(digest(&v), digest(&rewired));
    // Member order scrambled en route (objects are order-preserving):
    let scrambled =
        from_str(r#"{"points":[{"interval_s":5400,"n_nodes":640}],"replicas":8,"seed":7}"#)
            .unwrap();
    assert_eq!(digest(&v), digest(&scrambled));
}

#[test]
fn cache_hit_is_byte_identical_to_the_inserted_result() {
    let mut cache = ResultCache::new(16);
    let result = from_str(r#"{"efficiencies":[0.9637,0.8812],"truncated":[0,0]}"#).unwrap();
    let key = digest(&sweep_config(1));
    cache.insert(key, result.clone()).unwrap();
    let hit = cache.get(key).expect("hit");
    assert_eq!(
        hit.to_json(),
        result.to_json(),
        "rendering must match byte-for-byte"
    );
}

#[test]
fn spill_dir_round_trips_across_cache_instances() {
    // Two ResultCache instances over the same directory model two
    // process runs: the second gets a disk hit with identical bytes.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("digest_cache_spill");
    let _ = std::fs::remove_dir_all(&dir);
    let key = digest(&sweep_config(2));
    let result = from_str(r#"{"output":"F03b table…","rows":4}"#).unwrap();
    {
        let mut warm = ResultCache::with_spill_dir(4, &dir).unwrap();
        warm.insert(key, result.clone()).unwrap();
    }
    let mut cold = ResultCache::with_spill_dir(4, &dir).unwrap();
    assert_eq!(cold.len(), 0, "fresh instance starts cold in memory");
    let hit = cold.get(key).expect("disk hit");
    assert_eq!(hit.to_json(), result.to_json());
    assert_eq!(cold.stats().disk_hits, 1);
    assert_eq!(cold.stats().hits, 0);
    // Promoted into memory: the second lookup is a memory hit.
    assert!(cold.get(key).is_some());
    assert_eq!(cold.stats().hits, 1);
}

#[test]
fn eviction_spares_spilled_entries() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("digest_cache_evict");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cache = ResultCache::with_spill_dir(2, &dir).unwrap();
    let keys: Vec<u64> = (0..5).map(|i| digest(&sweep_config(i))).collect();
    for (i, &k) in keys.iter().enumerate() {
        cache
            .insert(k, Value::Object(vec![("i".into(), (i as u64).into())]))
            .unwrap();
    }
    assert_eq!(cache.len(), 2, "LRU bound holds");
    assert_eq!(cache.stats().evictions, 3);
    // Evicted entries still answer — from disk.
    let hit = cache.get(keys[0]).expect("spilled entry still served");
    assert_eq!(hit["i"].as_u64(), Some(0));
    assert_eq!(cache.stats().disk_hits, 1);
}

#[test]
fn hex_form_is_the_spill_file_name() {
    let v = sweep_config(3);
    let hex = digest_hex(&v);
    assert_eq!(hex.len(), 16);
    assert_eq!(u64::from_str_radix(&hex, 16).unwrap(), digest(&v));
    assert!(canonical_json(&v).starts_with("{\"points\""));
}
