//! Canonical form + content digest for configuration JSON.
//!
//! Two syntactically different documents that mean the same config —
//! members in a different order, redundant whitespace — must address
//! the same cached result. [`canonical_json`] renders a [`Value`] into
//! a normal form (object members sorted by key at every level, compact
//! separators, the workspace's deterministic number formatting) and
//! [`digest`] hashes those bytes with FNV-1a 64. The digest is a pure
//! function of the value: no ambient time, no randomized hashing, so
//! it is stable across thread counts, process runs, and machines —
//! exactly what a cross-run result cache needs as a key.

use crate::Value;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice — the same digest family the golden
/// trace tests use.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Render `v` in canonical form: compact, object members sorted by key
/// (byte order, stable for duplicate keys) at every nesting level.
pub fn canonical_json(v: &Value) -> String {
    let mut out = String::new();
    write_canonical(v, &mut out);
    out
}

fn write_canonical(v: &Value, out: &mut String) {
    match v {
        Value::Object(kv) => {
            let mut idx: Vec<usize> = (0..kv.len()).collect();
            idx.sort_by(|&a, &b| kv[a].0.as_bytes().cmp(kv[b].0.as_bytes()));
            out.push('{');
            for (n, &i) in idx.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                // Reuse the compact writer for the key's escaping.
                out.push_str(&Value::String(kv[i].0.clone()).to_json());
                out.push(':');
                write_canonical(&kv[i].1, out);
            }
            out.push('}');
        }
        Value::Array(vs) => {
            out.push('[');
            for (n, e) in vs.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                write_canonical(e, out);
            }
            out.push(']');
        }
        scalar => out.push_str(&scalar.to_json()),
    }
}

/// Content digest of a value: FNV-1a 64 over its canonical rendering.
pub fn digest(v: &Value) -> u64 {
    fnv1a_64(canonical_json(v).as_bytes())
}

/// [`digest`] as the 16-hex-digit form used for spill-file names and
/// wire metadata.
pub fn digest_hex(v: &Value) -> String {
    format!("{:016x}", digest(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_str, object};

    #[test]
    fn member_order_does_not_change_the_digest() {
        let a = from_str(r#"{"b":1,"a":{"y":2,"x":[3,4]}}"#).unwrap();
        let b = from_str(r#"{"a":{"x":[3,4],"y":2},"b":1}"#).unwrap();
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn array_order_matters() {
        let a = from_str("[1,2]").unwrap();
        let b = from_str("[2,1]").unwrap();
        assert_ne!(digest(&a), digest(&b));
    }

    #[test]
    fn whitespace_is_immaterial() {
        let a = from_str("{ \"k\" : [ 1 , 2 ] }").unwrap();
        let b = from_str(r#"{"k":[1,2]}"#).unwrap();
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn digest_is_pinned_across_process_runs() {
        // A constant expectation: if this digest ever changes, every
        // on-disk cache entry silently invalidates — that must be a
        // deliberate, visible decision, not drift.
        let v = object([
            ("experiment", "f03b_resilience".into()),
            ("seed", 7u64.into()),
        ]);
        assert_eq!(
            canonical_json(&v),
            r#"{"experiment":"f03b_resilience","seed":7}"#
        );
        assert_eq!(digest_hex(&v), format!("{:016x}", digest(&v)));
        assert_eq!(digest_hex(&v), "6cee10c28ca5af51");
    }

    #[test]
    fn fnv_reference_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
