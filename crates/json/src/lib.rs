//! Minimal dependency-free JSON for the deep-rs workspace.
//!
//! The build environment has no registry access, so instead of serde this
//! crate provides a small [`Value`] tree, a strict recursive-descent
//! parser ([`from_str`]), and compact/pretty printers. Types that need
//! (de)serialisation implement explicit `to_json`/`from_json` methods —
//! more verbose than derive, but fully auditable and dependency-free.
//!
//! Objects preserve insertion order (they are association lists, not
//! maps), so printed output is deterministic.
//!
//! Since `deep-serve` feeds this parser straight off sockets, it is
//! hardened for untrusted input: container nesting is capped at
//! [`MAX_DEPTH`] (the parser is recursive-descent, so unbounded depth
//! would exhaust the stack), every malformed document returns a
//! [`ParseError`] with a byte offset instead of panicking, and
//! [`from_slice`] accepts arbitrary byte soup (UTF-8 is validated
//! first). A proptest in `tests/untrusted_input.rs` drives random
//! bytes through the parser to keep the no-panic claim honest.
//!
//! [`digest`] canonicalises a [`Value`] (object keys sorted) and
//! hashes it with FNV-1a; [`cache`] is the content-addressed result
//! store built on those digests.

#![forbid(unsafe_code)]

pub mod cache;
pub mod digest;

use std::fmt;
use std::ops::Index;

/// Maximum container nesting [`from_str`] accepts. Deeper documents are
/// rejected with a parse error rather than risking stack exhaustion on
/// adversarial input like `[[[[…`.
pub const MAX_DEPTH: usize = 128;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on other variants or missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The member list, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(kv) => Some(kv),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(vs) => {
                if vs.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(kv) => {
                if kv.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in kv.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(vs) => vs.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n == other)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

macro_rules! from_int {
    ($($t:ty),+) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        }
    )+};
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(vs: Vec<T>) -> Value {
        Value::Array(vs.into_iter().map(Into::into).collect())
    }
}

/// Build an object value from `(key, value)` pairs in order.
pub fn object<const N: usize>(members: [(&str, Value); N]) -> Value {
    Value::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Where and why parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse an untrusted byte buffer: UTF-8 is validated first (failure
/// reported at the first invalid byte), then parsed like [`from_str`].
/// Never panics, whatever the input.
pub fn from_slice(input: &[u8]) -> Result<Value, ParseError> {
    let s = std::str::from_utf8(input).map_err(|e| ParseError {
        at: e.valid_up_to(),
        message: "invalid UTF-8".to_string(),
    })?;
    from_str(s)
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Run a container parser one nesting level deeper, enforcing
    /// [`MAX_DEPTH`].
    fn nested(
        &mut self,
        inner: fn(&mut Self) -> Result<Value, ParseError>,
    ) -> Result<Value, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        let v = inner(self);
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut vs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(vs));
        }
        loop {
            self.skip_ws();
            vs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(vs));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(kv));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            kv.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(kv));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (valid UTF-8 by construction).
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            s.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII (digits, sign, dot, exponent), so
        // this cannot fail — but a parse error beats aborting a daemon.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = from_str(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny\"z"},"d":null,"e":true}"#).unwrap();
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], -300.0);
        assert_eq!(v["b"]["c"].as_str().unwrap(), "x\ny\"z");
        assert_eq!(v["d"], Value::Null);
        assert_eq!(v["e"].as_bool(), Some(true));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn roundtrips_compact_and_pretty() {
        let v = object([
            ("id", "F01".into()),
            ("rows", vec!["42", "43"].into()),
            ("n", 7u32.into()),
            ("x", 0.125.into()),
        ]);
        for text in [v.to_json(), v.to_json_pretty()] {
            let back = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
        assert!(v.to_json_pretty().contains("\"F01\""));
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
        let back = from_str(&v.to_json()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str(r#""unterminated"#).is_err());
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        // One level under the cap parses; one over errors cleanly.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(from_str(&ok).is_ok());
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = from_str(&deep).unwrap_err();
        assert!(err.message.contains("MAX_DEPTH"), "{err}");
        // Mixed object/array nesting counts every container level.
        let mixed = "{\"k\":".repeat(70) + &"[".repeat(70);
        assert!(from_str(&mixed).is_err());
    }

    #[test]
    fn from_slice_handles_arbitrary_bytes() {
        assert_eq!(from_slice(b"[1,2]").unwrap(), from_str("[1,2]").unwrap());
        let err = from_slice(&[b'"', 0xff, 0xfe, b'"']).unwrap_err();
        assert!(err.message.contains("UTF-8"));
        assert_eq!(err.at, 1);
        assert!(from_slice(&[]).is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Number(3.0).to_json(), "3");
        assert_eq!(Value::Number(3.5).to_json(), "3.5");
        assert_eq!(Value::Number(-0.0).to_json(), "0");
    }
}
