//! Content-addressed result cache keyed by config digests.
//!
//! The cache memoizes expensive computations (simulation sweeps,
//! experiment renders) whose inputs are canonicalised JSON configs:
//! the key is [`crate::digest::digest`] of the config, the value is
//! the result as a [`Value`]. Storage is a bounded in-memory LRU with
//! an optional on-disk spill directory — evicted or cold entries are
//! still served from disk, so repeated sweeps across *process* runs
//! are free too (ROADMAP item 1's cross-run memoization).
//!
//! Recency is a logical access counter, not wall-clock time, so
//! eviction order is a pure function of the access sequence — the
//! LRU tests can assert exact eviction victims.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::{from_str, Value};

/// Running totals; `hits`/`misses` count [`ResultCache::get`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups answered by loading a spill file.
    pub disk_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries pushed out of memory by the LRU bound.
    pub evictions: u64,
}

struct Slot {
    value: Value,
    /// Logical last-access stamp (monotone counter, not time).
    stamp: u64,
}

/// Bounded LRU of digest → result, with optional disk spill.
pub struct ResultCache {
    capacity: usize,
    slots: BTreeMap<u64, Slot>,
    clock: u64,
    spill_dir: Option<PathBuf>,
    stats: CacheStats,
}

impl ResultCache {
    /// In-memory cache holding at most `capacity` entries (≥ 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            slots: BTreeMap::new(),
            clock: 0,
            spill_dir: None,
            stats: CacheStats::default(),
        }
    }

    /// Like [`ResultCache::new`], plus a spill directory (created if
    /// missing): inserts are persisted as `<digest>.json`, and misses
    /// fall back to loading from it.
    pub fn with_spill_dir(capacity: usize, dir: &Path) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        let mut c = ResultCache::new(capacity);
        c.spill_dir = Some(dir.to_path_buf());
        Ok(c)
    }

    fn spill_path(&self, digest: u64) -> Option<PathBuf> {
        self.spill_dir
            .as_ref()
            .map(|d| d.join(format!("{digest:016x}.json")))
    }

    /// Look up a digest; memory first, then the spill directory (a
    /// disk hit is promoted back into memory).
    pub fn get(&mut self, digest: u64) -> Option<Value> {
        self.clock += 1;
        if let Some(slot) = self.slots.get_mut(&digest) {
            slot.stamp = self.clock;
            self.stats.hits += 1;
            return Some(slot.value.clone());
        }
        if let Some(path) = self.spill_path(digest) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(v) = from_str(&text) {
                    self.stats.disk_hits += 1;
                    self.place(digest, v.clone());
                    return Some(v);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Insert (or refresh) an entry, spilling to disk when configured.
    /// Disk write failures are reported; the memory insert stands
    /// regardless.
    pub fn insert(&mut self, digest: u64, value: Value) -> io::Result<()> {
        self.clock += 1;
        let mut spill_result = Ok(());
        if let Some(path) = self.spill_path(digest) {
            // Write-then-rename so a concurrent reader never sees a
            // torn file.
            let tmp = path.with_extension("tmp");
            spill_result =
                std::fs::write(&tmp, value.to_json()).and_then(|()| std::fs::rename(&tmp, &path));
        }
        self.place(digest, value);
        spill_result
    }

    /// Memory insert + LRU eviction, recency stamped from the clock.
    fn place(&mut self, digest: u64, value: Value) {
        self.slots.insert(
            digest,
            Slot {
                value,
                stamp: self.clock,
            },
        );
        while self.slots.len() > self.capacity {
            let Some(coldest) = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(&d, _)| d)
            else {
                // Unreachable (len > capacity ≥ 0 implies non-empty),
                // and an under-full cache is not worth a panic.
                break;
            };
            self.slots.remove(&coldest);
            self.stats.evictions += 1;
        }
    }

    /// Entries currently resident in memory.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is resident in memory.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Value {
        Value::Object(vec![("n".to_string(), Value::Number(n as f64))])
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = ResultCache::new(2);
        c.insert(1, v(1)).unwrap();
        c.insert(2, v(2)).unwrap();
        assert!(c.get(1).is_some()); // 1 is now warmer than 2
        c.insert(3, v(3)).unwrap(); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "coldest entry must be the victim");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn bound_holds_under_churn() {
        let mut c = ResultCache::new(4);
        for i in 0..100 {
            c.insert(i, v(i)).unwrap();
            assert!(c.len() <= 4);
        }
        assert_eq!(c.stats().evictions, 96);
        // The four newest survive.
        for i in 96..100 {
            assert!(c.get(i).is_some());
        }
    }

    #[test]
    fn hit_returns_the_exact_value() {
        let mut c = ResultCache::new(8);
        let val = crate::from_str(r#"{"rows":[1,2,3],"eff":0.96}"#).unwrap();
        c.insert(42, val.clone()).unwrap();
        assert_eq!(c.get(42), Some(val));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                ..CacheStats::default()
            }
        );
    }
}
