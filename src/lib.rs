//! Umbrella crate for integration tests and examples of the deep-rs workspace.
pub use deep_core as core;
