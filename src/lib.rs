//! Umbrella crate for integration tests and examples of the deep-rs workspace.

#![forbid(unsafe_code)]
pub use deep_core as core;
